(* javac: compiler workload (SPECjvm98 _213_javac substitute).

   Builds random expression ASTs as a class hierarchy with virtual [eval]
   and [emit] methods, compiles them to a small stack code, executes that
   code, and cross-checks interpreter against compiler -- the polymorphic
   tree walking at the heart of a compiler front end. *)

open Minijava

let name = "javac"
let description = "expression compiler: polymorphic AST eval/emit plus stack VM"

(* Node kinds: 0 literal, 1 add, 2 sub, 3 mul.  A single class keeps field
   resolution simple; [eval]/[emit] are virtual and overridden by the
   binary-operation subclasses, so invokevirtual sees multiple receivers. *)
let node_class =
  {
    cname = "Node";
    super = None;
    fields = [ "v"; "lhs"; "rhs" ];
    cmethods =
      [
        {
          mname = "eval";
          params = [];
          body = [ Return (Field (l "this", "Node", "v")) ];
        };
        {
          mname = "emit";
          params = [ "code"; "len" ];
          body =
            [
              (* push-const v *)
              SetIndex (l "code", l "len", i 0);
              SetIndex
                (l "code", l "len" +: i 1, Field (l "this", "Node", "v"));
              Return (l "len" +: i 2);
            ];
        };
      ];
  }

let binop_class ~cname ~opcode ~eval_body =
  {
    cname;
    super = Some "Node";
    fields = [];
    cmethods =
      [
        { mname = "eval"; params = []; body = eval_body };
        {
          mname = "emit";
          params = [ "code"; "len" ];
          body =
            [
              Decl
                ( "len2",
                  CallV
                    ( Field (l "this", "Node", "lhs"),
                      "emit",
                      [ l "code"; l "len" ] ) );
              Decl
                ( "len3",
                  CallV
                    ( Field (l "this", "Node", "rhs"),
                      "emit",
                      [ l "code"; l "len2" ] ) );
              SetIndex (l "code", l "len3", i opcode);
              Return (l "len3" +: i 1);
            ];
        };
      ];
  }

let lhs_eval = CallV (Field (l "this", "Node", "lhs"), "eval", [])
let rhs_eval = CallV (Field (l "this", "Node", "rhs"), "eval", [])

let add_class =
  binop_class ~cname:"AddNode" ~opcode:1 ~eval_body:[ Return (lhs_eval +: rhs_eval) ]

let sub_class =
  binop_class ~cname:"SubNode" ~opcode:2 ~eval_body:[ Return (lhs_eval -: rhs_eval) ]

let mul_class =
  binop_class ~cname:"MulNode" ~opcode:3
    ~eval_body:[ Return (Bin (And, lhs_eval *: rhs_eval, Big 1048575)) ]

let and_class =
  binop_class ~cname:"AndNode" ~opcode:4
    ~eval_body:[ Return (Bin (And, lhs_eval, rhs_eval)) ]

let or_class =
  binop_class ~cname:"OrNode" ~opcode:5
    ~eval_body:[ Return (Bin (Or, lhs_eval, rhs_eval)) ]

let xor_class =
  binop_class ~cname:"XorNode" ~opcode:6
    ~eval_body:[ Return (Bin (Xor, lhs_eval, rhs_eval)) ]

let min_class =
  binop_class ~cname:"MinNode" ~opcode:7
    ~eval_body:
      [
        Decl ("a", lhs_eval);
        Decl ("b", rhs_eval);
        If (l "a" <: l "b", [ Return (l "a") ], [ Return (l "b") ]);
      ]

let max_class =
  binop_class ~cname:"MaxNode" ~opcode:8
    ~eval_body:
      [
        Decl ("a", lhs_eval);
        Decl ("b", rhs_eval);
        If (l "a" >: l "b", [ Return (l "a") ], [ Return (l "b") ]);
      ]

(* Build a random tree of the given depth budget. *)
let build_tree_func =
  {
    mname = "buildTree";
    params = [ "depth" ];
    body =
      [
        If
          ( Bin (Or, l "depth" <=: i 0, CallS ("rnd", [ i 4 ]) =: i 0),
            [
              Decl ("leaf", New "Node");
              SetField (l "leaf", "Node", "v", CallS ("rnd", [ i 100 ]));
              Return (l "leaf");
            ],
            [] );
        Decl ("kind", CallS ("rnd", [ i 8 ]));
        Decl ("node", i 0);
        If (l "kind" =: i 0, [ Assign ("node", New "AddNode") ], []);
        If (l "kind" =: i 1, [ Assign ("node", New "SubNode") ], []);
        If (l "kind" =: i 2, [ Assign ("node", New "MulNode") ], []);
        If (l "kind" =: i 3, [ Assign ("node", New "AndNode") ], []);
        If (l "kind" =: i 4, [ Assign ("node", New "OrNode") ], []);
        If (l "kind" =: i 5, [ Assign ("node", New "XorNode") ], []);
        If (l "kind" =: i 6, [ Assign ("node", New "MinNode") ], []);
        If (l "kind" =: i 7, [ Assign ("node", New "MaxNode") ], []);
        SetField
          (l "node", "Node", "lhs", CallS ("buildTree", [ l "depth" -: i 1 ]));
        SetField
          (l "node", "Node", "rhs", CallS ("buildTree", [ l "depth" -: i 1 ]));
        Return (l "node");
      ];
  }

(* Execute the emitted stack code. *)
let run_code_func =
  {
    mname = "runCode";
    params = [ "code"; "len"; "stk" ];
    body =
      [
        Decl ("sp", i 0);
        Decl ("ip", i 0);
        While
          ( l "ip" <: l "len",
            [
              Decl ("op", Index (l "code", l "ip"));
              If
                ( l "op" =: i 0,
                  [
                    SetIndex (l "stk", l "sp", Index (l "code", l "ip" +: i 1));
                    Assign ("sp", l "sp" +: i 1);
                    Assign ("ip", l "ip" +: i 2);
                  ],
                  [
                    Decl ("b", Index (l "stk", l "sp" -: i 1));
                    Decl ("a", Index (l "stk", l "sp" -: i 2));
                    Decl ("r", i 0);
                    (* the hosted VM's own dispatch: a tableswitch *)
                    Switch
                      ( l "op",
                        [
                          (1, [ Assign ("r", l "a" +: l "b") ]);
                          (2, [ Assign ("r", l "a" -: l "b") ]);
                          (3,
                           [
                             Assign
                               ("r", Bin (And, l "a" *: l "b", Big 1048575));
                           ]);
                          (4, [ Assign ("r", Bin (And, l "a", l "b")) ]);
                          (5, [ Assign ("r", Bin (Or, l "a", l "b")) ]);
                          (6, [ Assign ("r", Bin (Xor, l "a", l "b")) ]);
                          (7,
                           [
                             If
                               ( l "a" <: l "b",
                                 [ Assign ("r", l "a") ],
                                 [ Assign ("r", l "b") ] );
                           ]);
                          (8,
                           [
                             If
                               ( l "a" >: l "b",
                                 [ Assign ("r", l "a") ],
                                 [ Assign ("r", l "b") ] );
                           ]);
                        ],
                        [] );
                    SetIndex (l "stk", l "sp" -: i 2, l "r");
                    Assign ("sp", l "sp" -: i 1);
                    Assign ("ip", l "ip" +: i 1);
                  ] );
            ] );
        Return (Index (l "stk", i 0));
      ];
  }

let round_func =
  {
    mname = "round";
    params = [ "k" ];
    body =
      [
        Workload_lib.reseed (l "k");
        Decl ("tree", CallS ("buildTree", [ i 7 ]));
        Decl ("direct", CallV (l "tree", "eval", []));
        Decl ("code", NewArray (i 2048));
        Decl ("stk", NewArray (i 256));
        Decl ("len", CallV (l "tree", "emit", [ l "code"; i 0 ]));
        Decl ("compiled", CallS ("runCode", [ l "code"; l "len"; l "stk" ]));
        Expr (CallS ("mix", [ l "direct" -: l "compiled" ]));
        Expr (CallS ("mix", [ l "direct" ]));
        Expr (CallS ("mix", [ l "len" ]));
        Return (i 0);
      ];
  }

let build ~scale =
  Codegen.compile ~name
    (Workload_lib.program
       ~classes:
         [ node_class; add_class; sub_class; mul_class; and_class; or_class;
           xor_class; min_class; max_class ]
       ~funcs:[ build_tree_func; run_code_func; round_func ]
       ~rounds:(30 * scale) ~round_name:"round" ())

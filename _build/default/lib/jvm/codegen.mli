(** MiniJava to mini-JVM bytecode compiler.

    Produces a linked {!Runtime.image}: flat VM code for every method,
    a deduplicated constant pool (all symbolic references go through it, so
    the quickable instructions have something to resolve), and the class
    table. *)

exception Error of string

val compile : name:string -> Minijava.prog -> Runtime.image
(** @raise Error on references to unknown locals or a missing [main]. *)

type cp_entry =
  | CP_int of int
  | CP_field of { cls : string; field : string }
  | CP_static of string
  | CP_method of string
  | CP_virtual of string
  | CP_class of string
  | CP_switch of { lo : int; targets : int array }

type method_decl = {
  m_name : string;
  m_is_virtual : bool;
  m_class : string option;
  m_nargs : int;
  m_nlocals : int;
  m_entry : int;
}

type class_decl = {
  c_name : string;
  c_super : string option;
  c_fields : string list;
}

let pp_cp ppf = function
  | CP_int v -> Format.fprintf ppf "int %d" v
  | CP_field { cls; field } -> Format.fprintf ppf "field %s.%s" cls field
  | CP_static name -> Format.fprintf ppf "static %s" name
  | CP_method name -> Format.fprintf ppf "method %s" name
  | CP_virtual name -> Format.fprintf ppf "virtual %s" name
  | CP_class name -> Format.fprintf ppf "class %s" name
  | CP_switch { lo; targets } ->
      Format.fprintf ppf "switch lo=%d cases=%d" lo (Array.length targets - 1)

open Vmbp_vm
module MJ = Minijava

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let o = Opcode.ops

type gen = {
  mutable code : Program.slot array;
  mutable len : int;
  cp_ids : (Classfile.cp_entry, int) Hashtbl.t;
  mutable cp_rev : Classfile.cp_entry list;
  mutable cp_len : int;
  mutable methods : Classfile.method_decl list;  (* reversed *)
}

let create () =
  {
    code = Array.make 1024 { Program.opcode = 0; operands = [||] };
    len = 0;
    cp_ids = Hashtbl.create 64;
    cp_rev = [];
    cp_len = 0;
    methods = [];
  }

let emit g opcode operands =
  if g.len >= Array.length g.code then begin
    let bigger =
      Array.make (2 * Array.length g.code) { Program.opcode = 0; operands = [||] }
    in
    Array.blit g.code 0 bigger 0 g.len;
    g.code <- bigger
  end;
  g.code.(g.len) <- { Program.opcode; operands };
  g.len <- g.len + 1;
  g.len - 1

let cp g entry =
  match Hashtbl.find_opt g.cp_ids entry with
  | Some id -> id
  | None ->
      let id = g.cp_len in
      Hashtbl.replace g.cp_ids entry id;
      g.cp_rev <- entry :: g.cp_rev;
      g.cp_len <- id + 1;
      id

(* Forward branches emit -1 and are patched when the label is placed. *)
let patch g slot target =
  let s = g.code.(slot) in
  s.Program.operands <-
    Array.map (fun v -> if v = -1 then target else v) s.Program.operands

(* Per-method compilation environment. *)
type env = {
  g : gen;
  locals : (string, int) Hashtbl.t;
  mutable nlocals : int;
}

let local_id env name =
  match Hashtbl.find_opt env.locals name with
  | Some id -> id
  | None -> error "unknown local %s" name

let declare_local env name =
  match Hashtbl.find_opt env.locals name with
  | Some id -> id
  | None ->
      let id = env.nlocals in
      Hashtbl.replace env.locals name id;
      env.nlocals <- id + 1;
      id

(* Normalise comparisons to {Eq, Ne, Lt, Ge} by swapping operands. *)
let normalise_cmp op a b =
  match op with
  | MJ.Gt -> (MJ.Lt, b, a)
  | MJ.Le -> (MJ.Ge, b, a)
  | MJ.Eq | MJ.Ne | MJ.Lt | MJ.Ge -> (op, a, b)
  | _ -> assert false

(* The opcode that branches when the comparison is FALSE. *)
let false_branch = function
  | MJ.Eq -> o.Opcode.if_icmpne
  | MJ.Ne -> o.Opcode.if_icmpeq
  | MJ.Lt -> o.Opcode.if_icmpge
  | MJ.Ge -> o.Opcode.if_icmplt
  | _ -> assert false

let true_branch = function
  | MJ.Eq -> o.Opcode.if_icmpeq
  | MJ.Ne -> o.Opcode.if_icmpne
  | MJ.Lt -> o.Opcode.if_icmplt
  | MJ.Ge -> o.Opcode.if_icmpge
  | _ -> assert false

let is_cmp = function
  | MJ.Eq | MJ.Ne | MJ.Lt | MJ.Le | MJ.Gt | MJ.Ge -> true
  | MJ.Add | MJ.Sub | MJ.Mul | MJ.Div | MJ.Rem | MJ.Shl | MJ.Shr | MJ.And
  | MJ.Or | MJ.Xor ->
      false

let arith_opcode = function
  | MJ.Add -> o.Opcode.iadd
  | MJ.Sub -> o.Opcode.isub
  | MJ.Mul -> o.Opcode.imul
  | MJ.Div -> o.Opcode.idiv
  | MJ.Rem -> o.Opcode.irem
  | MJ.Shl -> o.Opcode.ishl
  | MJ.Shr -> o.Opcode.ishr
  | MJ.And -> o.Opcode.iand
  | MJ.Or -> o.Opcode.ior
  | MJ.Xor -> o.Opcode.ixor
  | _ -> assert false

let rec compile_expr env (e : MJ.expr) =
  let g = env.g in
  match e with
  | MJ.Int v -> ignore (emit g o.Opcode.iconst [| v |])
  | MJ.Big v -> ignore (emit g o.Opcode.ldc [| cp g (Classfile.CP_int v) |])
  | MJ.Local name -> ignore (emit g o.Opcode.iload [| local_id env name |])
  | MJ.StaticVar name ->
      ignore (emit g o.Opcode.getstatic [| cp g (Classfile.CP_static name) |])
  | MJ.Field (recv, cls, field) ->
      compile_expr env recv;
      ignore
        (emit g o.Opcode.getfield [| cp g (Classfile.CP_field { cls; field }) |])
  | MJ.Bin (op, a, b) when is_cmp op ->
      (* Produce 0/1 via a short branch diamond. *)
      let op, a, b = normalise_cmp op a b in
      compile_expr env a;
      compile_expr env b;
      let jtrue = emit g (true_branch op) [| -1 |] in
      ignore (emit g o.Opcode.iconst [| 0 |]);
      let jend = emit g o.Opcode.goto [| -1 |] in
      patch g jtrue g.len;
      ignore (emit g o.Opcode.iconst [| 1 |]);
      patch g jend g.len
  | MJ.Bin (op, a, b) ->
      compile_expr env a;
      compile_expr env b;
      ignore (emit g (arith_opcode op) [||])
  | MJ.Neg a ->
      compile_expr env a;
      ignore (emit g o.Opcode.ineg [||])
  | MJ.CallS (name, args) ->
      List.iter (compile_expr env) args;
      ignore
        (emit g o.Opcode.invokestatic [| cp g (Classfile.CP_method name) |])
  | MJ.CallV (recv, name, args) ->
      compile_expr env recv;
      List.iter (compile_expr env) args;
      ignore
        (emit g o.Opcode.invokevirtual
           [| cp g (Classfile.CP_virtual name); List.length args |])
  | MJ.New cls -> ignore (emit g o.Opcode.new_ [| cp g (Classfile.CP_class cls) |])
  | MJ.NewArray len ->
      compile_expr env len;
      ignore (emit g o.Opcode.newarray [||])
  | MJ.Index (arr, idx) ->
      compile_expr env arr;
      compile_expr env idx;
      ignore (emit g o.Opcode.iaload [||])
  | MJ.Length arr ->
      compile_expr env arr;
      ignore (emit g o.Opcode.arraylength [||])

(* Compile a condition so that control falls through when it holds and
   branches to the returned slot (to patch) when it fails. *)
and compile_cond_false env (e : MJ.expr) =
  let g = env.g in
  match e with
  | MJ.Bin (op, a, b) when is_cmp op ->
      let op, a, b = normalise_cmp op a b in
      compile_expr env a;
      compile_expr env b;
      emit g (false_branch op) [| -1 |]
  | _ ->
      compile_expr env e;
      emit g o.Opcode.ifeq [| -1 |]

let rec compile_stmt env (s : MJ.stmt) =
  let g = env.g in
  match s with
  | MJ.Decl (name, e) ->
      compile_expr env e;
      let id = declare_local env name in
      ignore (emit g o.Opcode.istore [| id |])
  | MJ.Assign (name, e) -> (
      (* iinc peephole: x = x + const *)
      match e with
      | MJ.Bin (MJ.Add, MJ.Local n', MJ.Int d)
        when n' = name && d >= -128 && d <= 127 ->
          ignore (emit g o.Opcode.iinc [| local_id env name; d |])
      | _ ->
          compile_expr env e;
          ignore (emit g o.Opcode.istore [| local_id env name |]))
  | MJ.SetStatic (name, e) ->
      compile_expr env e;
      ignore (emit g o.Opcode.putstatic [| cp g (Classfile.CP_static name) |])
  | MJ.SetField (recv, cls, field, e) ->
      compile_expr env recv;
      compile_expr env e;
      ignore
        (emit g o.Opcode.putfield [| cp g (Classfile.CP_field { cls; field }) |])
  | MJ.SetIndex (arr, idx, e) ->
      compile_expr env arr;
      compile_expr env idx;
      compile_expr env e;
      ignore (emit g o.Opcode.iastore [||])
  | MJ.If (cond, then_, else_) ->
      let jelse = compile_cond_false env cond in
      List.iter (compile_stmt env) then_;
      if else_ = [] then patch g jelse g.len
      else begin
        let jend = emit g o.Opcode.goto [| -1 |] in
        patch g jelse g.len;
        List.iter (compile_stmt env) else_;
        patch g jend g.len
      end
  | MJ.While (cond, body) ->
      let top = g.len in
      let jend = compile_cond_false env cond in
      List.iter (compile_stmt env) body;
      ignore (emit g o.Opcode.goto [| top |]);
      patch g jend g.len
  | MJ.Switch (scrutinee, cases, default) ->
      if cases = [] then begin
        (* degenerate: evaluate for effect, run the default *)
        compile_expr env scrutinee;
        ignore (emit g o.Opcode.pop [||]);
        List.iter (compile_stmt env) default
      end
      else begin
        let keys = List.map fst cases in
        let lo = List.fold_left min (List.hd keys) keys in
        let hi = List.fold_left max (List.hd keys) keys in
        if hi - lo > 4096 then error "switch: key range too sparse";
        (* targets.(0) = default; filled in as the branches compile *)
        let targets = Array.make (hi - lo + 2) (-1) in
        let cp_idx = cp g (Classfile.CP_switch { lo; targets }) in
        compile_expr env scrutinee;
        ignore (emit g o.Opcode.tableswitch [| cp_idx |]);
        let jumps_to_end = ref [] in
        List.iter
          (fun (key, body) ->
            targets.(key - lo + 1) <- g.len;
            List.iter (compile_stmt env) body;
            jumps_to_end := emit g o.Opcode.goto [| -1 |] :: !jumps_to_end)
          cases;
        targets.(0) <- g.len;
        List.iter (compile_stmt env) default;
        (* keys absent from the case list fall to the default *)
        Array.iteri
          (fun k t -> if k > 0 && t = -1 then targets.(k) <- targets.(0))
          targets;
        List.iter (fun slot -> patch g slot g.len) !jumps_to_end
      end
  | MJ.Return e ->
      compile_expr env e;
      ignore (emit g o.Opcode.ireturn [||])
  | MJ.Expr e ->
      compile_expr env e;
      ignore (emit g o.Opcode.pop [||])
  | MJ.Print e ->
      compile_expr env e;
      ignore (emit g o.Opcode.print_int [||])

let compile_method g ~owner (m : MJ.mthd) =
  let env = { g; locals = Hashtbl.create 8; nlocals = 0 } in
  let is_virtual = owner <> None in
  if is_virtual then ignore (declare_local env "this");
  List.iter (fun p -> ignore (declare_local env p)) m.MJ.params;
  let entry = g.len in
  List.iter (compile_stmt env) m.MJ.body;
  (* Fallback return for bodies that can run off the end. *)
  ignore (emit g o.Opcode.iconst [| 0 |]);
  ignore (emit g o.Opcode.ireturn [||]);
  {
    Classfile.m_name = m.MJ.mname;
    m_is_virtual = is_virtual;
    m_class = owner;
    m_nargs = List.length m.MJ.params + if is_virtual then 1 else 0;
    m_nlocals = env.nlocals;
    m_entry = entry;
  }

let compile ~name (p : MJ.prog) =
  let g = create () in
  let methods = ref [] in
  List.iter
    (fun (c : MJ.cls) ->
      List.iter
        (fun m -> methods := compile_method g ~owner:(Some c.MJ.cname) m :: !methods)
        c.MJ.cmethods)
    p.MJ.classes;
  List.iter
    (fun m -> methods := compile_method g ~owner:None m :: !methods)
    p.MJ.funcs;
  let classes =
    List.map
      (fun (c : MJ.cls) ->
        {
          Classfile.c_name = c.MJ.cname;
          c_super = c.MJ.super;
          c_fields = c.MJ.fields;
        })
      p.MJ.classes
  in
  let code = Array.sub g.code 0 g.len in
  Runtime.link ~name ~classes ~methods:(List.rev !methods)
    ~cp:(Array.of_list (List.rev g.cp_rev))
    ~code ~main:"main"

(* db: in-memory database (SPECjvm98 _209_db substitute).

   Records are heap objects chained into hash buckets; the workload mixes
   inserts, point lookups, updates and full scans -- pointer chasing through
   getfield_quick-heavy code. *)

open Minijava

let name = "db"
let description = "hash-indexed record store: inserts, lookups, updates, scans"

let rec_class =
  {
    cname = "Rec";
    super = None;
    fields = [ "key"; "bal"; "age"; "nxt" ];
    cmethods =
      [
        {
          mname = "score";
          params = [];
          body =
            [
              Return
                (Field (l "this", "Rec", "bal")
                +: (Field (l "this", "Rec", "age") *: i 3));
            ];
        };
        {
          mname = "credit";
          params = [ "amount" ];
          body =
            [
              SetField
                ( l "this",
                  "Rec",
                  "bal",
                  Field (l "this", "Rec", "bal") +: l "amount" );
              Return (Field (l "this", "Rec", "bal"));
            ];
        };
      ];
  }

let insert_func =
  {
    mname = "insert";
    params = [ "tab"; "key" ];
    body =
      [
        Decl ("r", New "Rec");
        SetField (l "r", "Rec", "key", l "key");
        SetField (l "r", "Rec", "bal", CallS ("rnd", [ i 1000 ]));
        SetField (l "r", "Rec", "age", CallS ("rnd", [ i 80 ]));
        Decl ("h", l "key" %: Length (l "tab"));
        SetField (l "r", "Rec", "nxt", Index (l "tab", l "h"));
        SetIndex (l "tab", l "h", l "r");
        Return (i 0);
      ];
  }

let lookup_func =
  {
    mname = "lookup";
    params = [ "tab"; "key" ];
    body =
      [
        Decl ("r", Index (l "tab", l "key" %: Length (l "tab")));
        While
          ( l "r" <>: i 0,
            [
              If
                (Field (l "r", "Rec", "key") =: l "key", [ Return (l "r") ], []);
              Assign ("r", Field (l "r", "Rec", "nxt"));
            ] );
        Return (i 0);
      ];
  }

let scan_func =
  {
    mname = "scan";
    params = [ "tab" ];
    body =
      [
        Decl ("acc", i 0);
        Decl ("b", i 0);
        While
          ( l "b" <: Length (l "tab"),
            [
              Decl ("r", Index (l "tab", l "b"));
              While
                ( l "r" <>: i 0,
                  [
                    Assign ("acc", l "acc" +: CallV (l "r", "score", []));
                    Assign ("r", Field (l "r", "Rec", "nxt"));
                  ] );
              Assign ("b", l "b" +: i 1);
            ] );
        Return (l "acc");
      ];
  }

(* Secondary index: a sorted key array maintained by insertion sort,
   searched by binary search -- the classic database index pair. *)
let index_insert_func =
  {
    mname = "indexInsert";
    params = [ "idx"; "count"; "key" ];
    body =
      [
        Decl ("j", l "count");
        (* no short-circuit And in MiniJava: guard the index explicitly *)
        Decl ("go", i 1);
        While
          ( Bin (And, l "go" =: i 1, l "j" >: i 0),
            [
              If
                ( Index (l "idx", l "j" -: i 1) >: l "key",
                  [
                    SetIndex (l "idx", l "j", Index (l "idx", l "j" -: i 1));
                    Assign ("j", l "j" -: i 1);
                  ],
                  [ Assign ("go", i 0) ] );
            ] );
        SetIndex (l "idx", l "j", l "key");
        Return (l "count" +: i 1);
      ];
  }

let index_search_func =
  {
    mname = "indexSearch";
    params = [ "idx"; "count"; "key" ];
    body =
      [
        Decl ("lo", i 0);
        Decl ("hi", l "count");
        While
          ( l "lo" <: l "hi",
            [
              Decl ("mid", (l "lo" +: l "hi") /: i 2);
              If
                ( Index (l "idx", l "mid") <: l "key",
                  [ Assign ("lo", l "mid" +: i 1) ],
                  [ Assign ("hi", l "mid") ] );
            ] );
        Return (l "lo");
      ];
  }

let range_count_func =
  {
    mname = "rangeCount";
    params = [ "idx"; "count"; "lo"; "hi" ];
    body =
      [
        Return
          (CallS ("indexSearch", [ l "idx"; l "count"; l "hi" ])
          -: CallS ("indexSearch", [ l "idx"; l "count"; l "lo" ]));
      ];
  }

let round_func =
  {
    mname = "round";
    params = [ "k" ];
    body =
      [
        Workload_lib.reseed (l "k");
        Decl ("tab", NewArray (i 128));
        Decl ("idx", NewArray (i 512));
        Decl ("icount", i 0);
        Decl ("j", i 0);
        While
          ( l "j" <: i 300,
            [
              Decl ("key", CallS ("rnd", [ i 10000 ]));
              Expr (CallS ("insert", [ l "tab"; l "key" ]));
              (* the index covers every other record *)
              If
                ( l "j" %: i 2 =: i 0,
                  [
                    Assign
                      ( "icount",
                        CallS ("indexInsert", [ l "idx"; l "icount"; l "key" ])
                      );
                  ],
                  [] );
              Assign ("j", l "j" +: i 1);
            ] );
        (* point queries and updates *)
        Decl ("hits", i 0);
        Assign ("j", i 0);
        While
          ( l "j" <: i 500,
            [
              Decl ("r", CallS ("lookup", [ l "tab"; CallS ("rnd", [ i 10000 ]) ]));
              If
                ( l "r" <>: i 0,
                  [
                    Assign ("hits", l "hits" +: i 1);
                    Expr (CallV (l "r", "credit", [ i 7 ]));
                  ],
                  [] );
              Assign ("j", l "j" +: i 1);
            ] );
        Expr (CallS ("mix", [ l "hits" ]));
        Expr (CallS ("mix", [ CallS ("scan", [ l "tab" ]) ]));
        (* range queries over the sorted index *)
        Assign ("j", i 0);
        While
          ( l "j" <: i 40,
            [
              Decl ("lo2", CallS ("rnd", [ i 9000 ]));
              Expr
                (CallS
                   ( "mix",
                     [
                       CallS
                         ("rangeCount",
                          [ l "idx"; l "icount"; l "lo2"; l "lo2" +: i 800 ]);
                     ] ));
              Assign ("j", l "j" +: i 1);
            ] );
        Return (i 0);
      ];
  }

let build ~scale =
  Codegen.compile ~name
    (Workload_lib.program ~classes:[ rec_class ]
       ~funcs:
         [ insert_func; lookup_func; scan_func; index_insert_func;
           index_search_func; range_count_func; round_func ]
       ~rounds:(6 * scale) ~round_name:"round" ())

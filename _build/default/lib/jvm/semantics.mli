(** Execution semantics of the mini-JVM, including the lazy resolution that
    drives quickening (Section 5.4): the first execution of a quickable
    instruction resolves its constant-pool entry, performs the operation,
    and asks the engine to rewrite the code slot to the quick version with
    resolved operands. *)

val exec : Runtime.state -> Vmbp_core.Engine.exec
(** Semantics closure over a machine state; {!Runtime.Trap} becomes
    {!Vmbp_vm.Control.Trap}. *)

open Vmbp_vm

type t = {
  iconst : int;
  ldc : int;
  ldc_quick : int;
  iload : int;
  istore : int;
  iinc : int;
  pop : int;
  dup : int;
  dup_x1 : int;
  swap : int;
  iadd : int;
  isub : int;
  imul : int;
  idiv : int;
  irem : int;
  ineg : int;
  ishl : int;
  ishr : int;
  iand : int;
  ior : int;
  ixor : int;
  goto : int;
  tableswitch : int;
  ifeq : int;
  ifne : int;
  iflt : int;
  ifge : int;
  if_icmpeq : int;
  if_icmpne : int;
  if_icmplt : int;
  if_icmpge : int;
  new_ : int;
  new_quick : int;
  getfield : int;
  getfield_quick : int;
  putfield : int;
  putfield_quick : int;
  getstatic : int;
  getstatic_quick : int;
  putstatic : int;
  putstatic_quick : int;
  newarray : int;
  iaload : int;
  iastore : int;
  arraylength : int;
  invokestatic : int;
  invokestatic_quick : int;
  invokevirtual : int;
  invokevirtual_quick : int;
  return_ : int;
  ireturn : int;
  print_int : int;
}

let iset = Instr_set.create ~name:"jvm"

let ops =
  let reg ?(work = 4) ?(reloc = true) ?(operands = 0) ?branch ?(quickable = false)
      ?quick_of name =
    Instr_set.register iset ~name ~work_instrs:work ~work_bytes:(work * 3)
      ~relocatable:reloc
      ?branch:(Option.map (fun b -> b) branch)
      ~operand_count:operands ~quickable ?quick_of ()
  in
  let iconst = reg ~work:5 ~operands:1 "iconst" in
  (* Quickable originals model the cost of symbolic resolution: string
     lookups in the constant pool and class tables. *)
  let ldc = reg ~work:40 ~reloc:false ~operands:1 ~quickable:true "ldc" in
  let ldc_quick = reg ~work:5 ~operands:1 ~quick_of:ldc "ldc_quick" in
  let iload = reg ~work:6 ~operands:1 "iload" in
  let istore = reg ~work:6 ~operands:1 "istore" in
  let iinc = reg ~work:7 ~operands:2 "iinc" in
  let pop = reg ~work:4 "pop" in
  let dup = reg ~work:6 "dup" in
  let dup_x1 = reg ~work:9 "dup_x1" in
  let swap = reg ~work:8 "swap" in
  let iadd = reg ~work:6 "iadd" in
  let isub = reg ~work:6 "isub" in
  let imul = reg ~work:7 "imul" in
  let idiv = reg ~work:12 "idiv" in
  let irem = reg ~work:12 "irem" in
  let ineg = reg ~work:5 "ineg" in
  let ishl = reg ~work:7 "ishl" in
  let ishr = reg ~work:7 "ishr" in
  let iand = reg ~work:6 "iand" in
  let ior = reg ~work:6 "ior" in
  let ixor = reg ~work:6 "ixor" in
  let branch_op ?(work = 8) name = reg ~work ~operands:1 ~branch:(Instr.Cond_branch 0) name in
  let goto = reg ~work:5 ~operands:1 ~branch:(Instr.Uncond_branch 0) "goto" in
  let tableswitch =
    reg ~work:9 ~operands:1 ~branch:Instr.Indirect_branch "tableswitch"
  in
  let ifeq = branch_op "ifeq" in
  let ifne = branch_op "ifne" in
  let iflt = branch_op "iflt" in
  let ifge = branch_op "ifge" in
  let if_icmpeq = branch_op ~work:10 "if_icmpeq" in
  let if_icmpne = branch_op ~work:10 "if_icmpne" in
  let if_icmplt = branch_op ~work:10 "if_icmplt" in
  let if_icmpge = branch_op ~work:10 "if_icmpge" in
  let new_ = reg ~work:80 ~reloc:false ~operands:1 ~quickable:true "new" in
  let new_quick = reg ~work:35 ~operands:1 ~quick_of:new_ "new_quick" in
  let getfield = reg ~work:60 ~reloc:false ~operands:1 ~quickable:true "getfield" in
  let getfield_quick = reg ~work:8 ~operands:1 ~quick_of:getfield "getfield_quick" in
  let putfield = reg ~work:60 ~reloc:false ~operands:1 ~quickable:true "putfield" in
  let putfield_quick = reg ~work:9 ~operands:1 ~quick_of:putfield "putfield_quick" in
  let getstatic = reg ~work:50 ~reloc:false ~operands:1 ~quickable:true "getstatic" in
  let getstatic_quick = reg ~work:6 ~operands:1 ~quick_of:getstatic "getstatic_quick" in
  let putstatic = reg ~work:50 ~reloc:false ~operands:1 ~quickable:true "putstatic" in
  let putstatic_quick = reg ~work:6 ~operands:1 ~quick_of:putstatic "putstatic_quick" in
  let newarray = reg ~work:40 ~reloc:false "newarray" in
  let iaload = reg ~work:11 "iaload" in
  let iastore = reg ~work:13 "iastore" in
  let arraylength = reg ~work:6 "arraylength" in
  let invokestatic =
    reg ~work:70 ~reloc:false ~operands:1 ~quickable:true
      ~branch:Instr.Indirect_call "invokestatic"
  in
  let invokestatic_quick =
    reg ~work:28 ~operands:1 ~quick_of:invokestatic ~branch:Instr.Indirect_call
      "invokestatic_quick"
  in
  let invokevirtual =
    reg ~work:90 ~reloc:false ~operands:2 ~quickable:true
      ~branch:Instr.Indirect_call "invokevirtual"
  in
  let invokevirtual_quick =
    reg ~work:34 ~operands:2 ~quick_of:invokevirtual ~branch:Instr.Indirect_call
      "invokevirtual_quick"
  in
  let return_ = reg ~work:16 ~branch:Instr.Return "return" in
  let ireturn = reg ~work:18 ~branch:Instr.Return "ireturn" in
  let print_int = reg ~work:40 ~reloc:false "print_int" in
  Instr_set.set_quick_family iset ~original:ldc ~quicks:[ ldc_quick ];
  Instr_set.set_quick_family iset ~original:new_ ~quicks:[ new_quick ];
  Instr_set.set_quick_family iset ~original:getfield ~quicks:[ getfield_quick ];
  Instr_set.set_quick_family iset ~original:putfield ~quicks:[ putfield_quick ];
  Instr_set.set_quick_family iset ~original:getstatic
    ~quicks:[ getstatic_quick ];
  Instr_set.set_quick_family iset ~original:putstatic
    ~quicks:[ putstatic_quick ];
  Instr_set.set_quick_family iset ~original:invokestatic
    ~quicks:[ invokestatic_quick ];
  Instr_set.set_quick_family iset ~original:invokevirtual
    ~quicks:[ invokevirtual_quick ];
  {
    iconst;
    ldc;
    ldc_quick;
    iload;
    istore;
    iinc;
    pop;
    dup;
    dup_x1;
    swap;
    iadd;
    isub;
    imul;
    idiv;
    irem;
    ineg;
    ishl;
    ishr;
    iand;
    ior;
    ixor;
    goto;
    tableswitch;
    ifeq;
    ifne;
    iflt;
    ifge;
    if_icmpeq;
    if_icmpne;
    if_icmplt;
    if_icmpge;
    new_;
    new_quick;
    getfield;
    getfield_quick;
    putfield;
    putfield_quick;
    getstatic;
    getstatic_quick;
    putstatic;
    putstatic_quick;
    newarray;
    iaload;
    iastore;
    arraylength;
    invokestatic;
    invokestatic_quick;
    invokevirtual;
    invokevirtual_quick;
    return_;
    ireturn;
    print_int;
  }

(* Registry of the JVM benchmark programs (paper Table VII substitutes). *)

type t = {
  name : string;
  description : string;
  build : scale:int -> Runtime.image;
}

let all =
  [
    { name = Wl_jack.name; description = Wl_jack.description;
      build = Wl_jack.build };
    { name = Wl_mpeg.name; description = Wl_mpeg.description;
      build = Wl_mpeg.build };
    { name = Wl_compress.name; description = Wl_compress.description;
      build = Wl_compress.build };
    { name = Wl_javac.name; description = Wl_javac.description;
      build = Wl_javac.build };
    { name = Wl_jess.name; description = Wl_jess.description;
      build = Wl_jess.build };
    { name = Wl_db.name; description = Wl_db.description;
      build = Wl_db.build };
    { name = Wl_mtrt.name; description = Wl_mtrt.description;
      build = Wl_mtrt.build };
  ]

let find name = List.find_opt (fun w -> w.name = name) all

(* mtrt: ray-tracer workload (SPECjvm98 _227_mtrt substitute).

   Fixed-point (10-bit) sphere tracing: spheres are heap objects with a
   virtual [hit] method, rays sweep a small image plane, and shading uses
   the integer square root.  Virtual dispatch over a scene list plus
   arithmetic-heavy intersection math. *)

open Minijava

let name = "mtrt"
let description = "fixed-point ray tracer: virtual intersections over a scene list"

let fx = 1024

(* Sphere: centre (cx,cy,cz), radius r, colour, and a [nxt] scene link.
   hit(ox,oy,oz,dx,dy,dz) returns the fixed-point ray parameter, or -1. *)
let sphere_class =
  {
    cname = "Sphere";
    super = None;
    fields = [ "cx"; "cy"; "cz"; "r"; "colour"; "nxt" ];
    cmethods =
      [
        {
          mname = "hit";
          params = [ "ox"; "oy"; "oz"; "dx"; "dy"; "dz" ];
          body =
            [
              Decl ("lx", Field (l "this", "Sphere", "cx") -: l "ox");
              Decl ("ly", Field (l "this", "Sphere", "cy") -: l "oy");
              Decl ("lz", Field (l "this", "Sphere", "cz") -: l "oz");
              (* tca = L . D  (fixed point) *)
              Decl
                ( "tca",
                  Bin
                    ( Shr,
                      (l "lx" *: l "dx") +: (l "ly" *: l "dy")
                      +: (l "lz" *: l "dz"),
                      i 10 ) );
              If (l "tca" <: i 0, [ Return (Neg (i 1)) ], []);
              Decl
                ( "d2",
                  Bin
                    ( Shr,
                      (l "lx" *: l "lx") +: (l "ly" *: l "ly")
                      +: (l "lz" *: l "lz"),
                      i 10 )
                  -: Bin (Shr, l "tca" *: l "tca", i 10) );
              Decl
                ( "r2",
                  Bin
                    ( Shr,
                      Field (l "this", "Sphere", "r")
                      *: Field (l "this", "Sphere", "r"),
                      i 10 ) );
              If (l "d2" >: l "r2", [ Return (Neg (i 1)) ], []);
              Decl
                ( "thc",
                  CallS ("isqrt", [ Bin (Shl, l "r2" -: l "d2", i 10) ]) );
              Return (l "tca" -: l "thc");
            ];
        };
        {
          mname = "shade";
          params = [ "t" ];
          body =
            [
              (* simple distance attenuation of the sphere's colour *)
              Decl ("att", i 4096 -: Bin (Shr, l "t", i 2));
              If (l "att" <: i 0, [ Assign ("att", i 0) ], []);
              Return
                (Bin
                   ( Shr,
                     Field (l "this", "Sphere", "colour") *: l "att",
                     i 12 ));
            ];
        };
      ];
  }

(* Material subclasses override [shade]: the scene list is heterogeneous,
   so invokevirtual sees polymorphic receivers, as in the real mtrt. *)
let material_class ~cname ~shade_body =
  {
    cname;
    super = Some "Sphere";
    fields = [];
    cmethods = [ { mname = "shade"; params = [ "t" ]; body = shade_body } ];
  }

let matte_class =
  material_class ~cname:"MatteSphere"
    ~shade_body:
      [
        Decl ("att", i 3000 -: Bin (Shr, l "t", i 3));
        If (l "att" <: i 0, [ Assign ("att", i 0) ], []);
        Return
          (Bin (Shr, Field (l "this", "Sphere", "colour") *: l "att", i 12));
      ]

let shiny_class =
  material_class ~cname:"ShinySphere"
    ~shade_body:
      [
        (* specular-ish: quadratic falloff via isqrt *)
        Decl ("a", i 8192 -: Bin (Shr, l "t", i 1));
        If (l "a" <: i 0, [ Assign ("a", i 0) ], []);
        Decl ("spec", CallS ("isqrt", [ l "a" ]));
        Return
          (Bin
             ( Shr,
               Field (l "this", "Sphere", "colour") *: (l "a" +: (l "spec" *: i 16)),
               i 13 ));
      ]

let glow_class =
  material_class ~cname:"GlowSphere"
    ~shade_body:
      [ Return (Field (l "this", "Sphere", "colour") +: Bin (And, l "t", i 63)) ]

let make_scene_func =
  {
    mname = "makeScene";
    params = [ "count" ];
    body =
      [
        Decl ("head", i 0);
        Decl ("j", i 0);
        While
          ( l "j" <: l "count",
            [
              Decl ("kind", CallS ("rnd", [ i 4 ]));
              Decl ("s", i 0);
              If (l "kind" =: i 0, [ Assign ("s", New "Sphere") ], []);
              If (l "kind" =: i 1, [ Assign ("s", New "MatteSphere") ], []);
              If (l "kind" =: i 2, [ Assign ("s", New "ShinySphere") ], []);
              If (l "kind" =: i 3, [ Assign ("s", New "GlowSphere") ], []);
              SetField
                ( l "s", "Sphere", "cx",
                  (CallS ("rnd", [ i 2048 ]) -: i 1024) *: i 4 );
              SetField
                ( l "s", "Sphere", "cy",
                  (CallS ("rnd", [ i 2048 ]) -: i 1024) *: i 4 );
              SetField
                ( l "s", "Sphere", "cz",
                  (CallS ("rnd", [ i 2048 ]) +: i 2048) *: i 4 );
              SetField
                ("s" |> l, "Sphere", "r", (CallS ("rnd", [ i 512 ]) +: i 512) *: i 2);
              SetField (l "s", "Sphere", "colour", CallS ("rnd", [ i 256 ]));
              SetField (l "s", "Sphere", "nxt", l "head");
              Assign ("head", l "s");
              Assign ("j", l "j" +: i 1);
            ] );
        Return (l "head");
      ];
  }

(* Trace one ray through the scene list; returns the shaded colour. *)
let trace_func =
  {
    mname = "trace";
    params = [ "scene"; "dx"; "dy"; "dz" ];
    body =
      [
        Decl ("best", Big 1073741823);
        Decl ("hitobj", i 0);
        Decl ("s", l "scene");
        While
          ( l "s" <>: i 0,
            [
              Decl
                ( "t",
                  CallV
                    (l "s", "hit", [ i 0; i 0; i 0; l "dx"; l "dy"; l "dz" ]) );
              If
                ( Bin (And, l "t" >=: i 0, l "t" <: l "best"),
                  [ Assign ("best", l "t"); Assign ("hitobj", l "s") ],
                  [] );
              Assign ("s", Field (l "s", "Sphere", "nxt"));
            ] );
        If (l "hitobj" =: i 0, [ Return (i 0) ], []);
        Return (CallV (l "hitobj", "shade", [ l "best" ]));
      ];
  }

let round_func =
  {
    mname = "round";
    params = [ "k" ];
    body =
      [
        Workload_lib.reseed (l "k");
        Decl ("scene", CallS ("makeScene", [ i 12 ]));
        Decl ("py", i 0);
        While
          ( l "py" <: i 18,
            [
              Decl ("px", i 0);
              While
                ( l "px" <: i 24,
                  [
                    Decl ("dx", (l "px" -: i 12) *: i 64);
                    Decl ("dy", (l "py" -: i 9) *: i 64);
                    Decl ("dz", i fx);
                    Expr
                      (CallS
                         ("mix", [ CallS ("trace", [ l "scene"; l "dx"; l "dy"; l "dz" ]) ]));
                    Assign ("px", l "px" +: i 1);
                  ] );
              Assign ("py", l "py" +: i 1);
            ] );
        Return (i 0);
      ];
  }

let build ~scale =
  Codegen.compile ~name
    (Workload_lib.program
       ~classes:[ sphere_class; matte_class; shiny_class; glow_class ]
       ~funcs:[ make_scene_func; trace_func; round_func ]
       ~rounds:scale ~round_name:"round" ())

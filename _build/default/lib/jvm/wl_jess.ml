(* jess: rule-engine workload (SPECjvm98 _202_jess substitute).

   Forward-chaining transitive closure: facts are heap objects on a
   worklist; the single rule edge(a,b) & edge(b,c) => edge(a,c) fires until
   fixpoint, with an adjacency matrix for duplicate suppression -- the
   working-memory pattern of a production system. *)

open Minijava

let name = "jess"
let description = "forward-chaining rule engine: transitive closure to fixpoint"

let fact_class =
  {
    cname = "Fact";
    super = None;
    fields = [ "a"; "b"; "nxt" ];
    cmethods =
      [
        {
          mname = "tag";
          params = [];
          body =
            [
              Return
                ((Field (l "this", "Fact", "a") *: i 64)
                +: Field (l "this", "Fact", "b"));
            ];
        };
      ];
  }

(* assertFact: add edge (a,b) if new; push on the worklist head held in
   static "agenda"; returns 1 when a new fact was asserted. *)
let assert_func =
  {
    mname = "assertFact";
    params = [ "adj"; "n"; "a"; "b" ];
    body =
      [
        Decl ("idx", (l "a" *: l "n") +: l "b");
        If (Index (l "adj", l "idx") <>: i 0, [ Return (i 0) ], []);
        SetIndex (l "adj", l "idx", i 1);
        Decl ("f", New "Fact");
        SetField (l "f", "Fact", "a", l "a");
        SetField (l "f", "Fact", "b", l "b");
        SetField (l "f", "Fact", "nxt", StaticVar "agenda");
        SetStatic ("agenda", l "f");
        SetStatic ("nfacts", StaticVar "nfacts" +: i 1);
        Return (i 1);
      ];
  }

let run_rules_func =
  {
    mname = "runRules";
    params = [ "adj"; "n" ];
    body =
      [
        While
          ( StaticVar "agenda" <>: i 0,
            [
              Decl ("f", StaticVar "agenda");
              SetStatic ("agenda", Field (l "f", "Fact", "nxt"));
              Decl ("a", Field (l "f", "Fact", "a"));
              Decl ("b", Field (l "f", "Fact", "b"));
              (* rule 1: (a,b) joined with (b,c) gives (a,c) *)
              Decl ("c", i 0);
              While
                ( l "c" <: l "n",
                  [
                    If
                      ( Index (l "adj", (l "b" *: l "n") +: l "c") <>: i 0,
                        [
                          Expr
                            (CallS ("assertFact", [ l "adj"; l "n"; l "a"; l "c" ]));
                        ],
                        [] );
                    Assign ("c", l "c" +: i 1);
                  ] );
              (* rule 2: (x,a) joined with (a,b) gives (x,b) *)
              Decl ("x", i 0);
              While
                ( l "x" <: l "n",
                  [
                    If
                      ( Index (l "adj", (l "x" *: l "n") +: l "a") <>: i 0,
                        [
                          Expr
                            (CallS ("assertFact", [ l "adj"; l "n"; l "x"; l "b" ]));
                        ],
                        [] );
                    Assign ("x", l "x" +: i 1);
                  ] );
              Expr (CallS ("mix", [ CallV (l "f", "tag", []) ]));
            ] );
        Return (i 0);
      ];
  }

let round_func =
  {
    mname = "round";
    params = [ "k" ];
    body =
      [
        Workload_lib.reseed (l "k");
        Decl ("n", i 24);
        Decl ("adj", NewArray (l "n" *: l "n"));
        SetStatic ("agenda", i 0);
        SetStatic ("nfacts", i 0);
        Decl ("j", i 0);
        While
          ( l "j" <: i 40,
            [
              Expr
                (CallS
                   ( "assertFact",
                     [ l "adj"; l "n"; CallS ("rnd", [ l "n" ]);
                       CallS ("rnd", [ l "n" ]) ] ));
              Assign ("j", l "j" +: i 1);
            ] );
        Expr (CallS ("runRules", [ l "adj"; l "n" ]));
        Expr (CallS ("mix", [ StaticVar "nfacts" ]));
        Return (i 0);
      ];
  }

let build ~scale =
  Codegen.compile ~name
    (Workload_lib.program ~classes:[ fact_class ]
       ~funcs:[ assert_func; run_rules_func; round_func ]
       ~rounds:(20 * scale) ~round_name:"round" ())

(** Class, method and constant-pool declarations of the mini-JVM.

    These are the symbolic, unresolved structures the front end produces;
    {!Runtime} links them into an executable image, and the quickable
    instructions resolve constant-pool entries lazily at run time
    (Section 5.4). *)

type cp_entry =
  | CP_int of int  (** an [ldc] constant *)
  | CP_field of { cls : string; field : string }
  | CP_static of string  (** global variable name *)
  | CP_method of string  (** static method name *)
  | CP_virtual of string  (** virtual method name *)
  | CP_class of string
  | CP_switch of { lo : int; targets : int array }
      (** jump table of a [tableswitch]: [targets.(0)] is the default,
          [targets.(k+1)] the target for key [lo + k].  The array is filled
          in by the code generator as case labels resolve. *)

type method_decl = {
  m_name : string;
  m_is_virtual : bool;
  m_class : string option;  (** defining class for virtual methods *)
  m_nargs : int;  (** parameters, including the receiver if virtual *)
  m_nlocals : int;  (** total locals, including parameters *)
  m_entry : int;  (** first VM code slot *)
}

type class_decl = {
  c_name : string;
  c_super : string option;
  c_fields : string list;  (** newly declared fields, in offset order *)
}

val pp_cp : Format.formatter -> cp_entry -> unit

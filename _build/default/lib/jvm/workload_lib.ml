(* Shared MiniJava fragments for the JVM workloads: deterministic PRNG,
   checksum mixing, integer square root, and the driver skeleton. *)

open Minijava

(* seed = (seed * 1103515245 + 12345) & 0x7fffffff; return seed %% n *)
let rnd_func =
  {
    mname = "rnd";
    params = [ "n" ];
    body =
      [
        SetStatic
          ( "seed",
            Bin
              ( And,
                (StaticVar "seed" *: Big 1103515245) +: Big 12345,
                Big 2147483647 ) );
        Return (StaticVar "seed" %: l "n");
      ];
  }

(* chk = (chk * 31 + v) & 0x3fffffff *)
let mix_func =
  {
    mname = "mix";
    params = [ "v" ];
    body =
      [
        SetStatic
          ("chk", Bin (And, (StaticVar "chk" *: i 31) +: l "v", Big 1073741823));
        Return (i 0);
      ];
  }

(* Newton integer square root. *)
let isqrt_func =
  {
    mname = "isqrt";
    params = [ "v" ];
    body =
      [
        If (l "v" <=: i 0, [ Return (i 0) ], []);
        Decl ("x", l "v");
        Decl ("y", (l "x" +: i 1) /: i 2);
        While
          ( l "y" <: l "x",
            [
              Assign ("x", l "y");
              Assign ("y", (l "x" +: (l "v" /: l "x")) /: i 2);
            ] );
        Return (l "x");
      ];
  }

let prelude_funcs = [ rnd_func; mix_func; isqrt_func ]

(* A standard driver: seed the PRNG, run [round k] for k in 0..rounds-1,
   print the checksum. *)
let driver ~rounds ~round_name =
  [
    SetStatic ("seed", i 12345);
    SetStatic ("chk", i 0);
    Decl ("k", i 0);
    While
      ( l "k" <: i rounds,
        [ Expr (CallS (round_name, [ l "k" ])); Assign ("k", l "k" +: i 1) ] );
    Print (StaticVar "chk");
  ]

(* Re-seed per round so rounds are independent of each other's history. *)
let reseed k_expr = SetStatic ("seed", (k_expr *: Big 7919) +: i 1)

let program ?(classes = []) ~funcs ~rounds ~round_name () =
  {
    classes;
    funcs =
      { mname = "main"; params = []; body = driver ~rounds ~round_name }
      :: (prelude_funcs @ funcs);
  }

(* compress: LZW compression over skewed synthetic data, verified by
   expanding every emitted code against the source (SPECjvm98 _201_compress
   substitute).  Array- and hash-chain-heavy with long basic blocks. *)

open Minijava

let name = "compress"
let description = "LZW compression with hash-chained dictionary and verification"

let fill_func =
  {
    mname = "fill";
    params = [ "src" ];
    body =
      [
        Decl ("prev", i 0);
        Decl ("k", i 0);
        While
          ( l "k" <: Length (l "src"),
            [
              If
                ( CallS ("rnd", [ i 4 ]) >: i 0,
                  [ SetIndex (l "src", l "k", l "prev") ],
                  [
                    Assign ("prev", CallS ("rnd", [ i 16 ]));
                    SetIndex (l "src", l "k", l "prev");
                  ] );
              Assign ("k", l "k" +: i 1);
            ] );
        Return (i 0);
      ];
  }

(* Find the dictionary entry for (w, c); -1 if absent. *)
let find_func =
  {
    mname = "find";
    params = [ "w"; "c"; "prefix"; "ch"; "head"; "nxt" ];
    body =
      [
        Decl ("h", Bin (And, (l "w" *: i 31) +: l "c", i 1023));
        Decl ("e", Index (l "head", l "h"));
        Decl ("found", Neg (i 1));
        While
          ( l "e" <>: i 0,
            [
              If
                ( Bin
                    ( And,
                      Index (l "prefix", l "e" -: i 1) =: l "w",
                      Index (l "ch", l "e" -: i 1) =: l "c" ),
                  [ Assign ("found", l "e" -: i 1); Assign ("e", i 0) ],
                  [ Assign ("e", Index (l "nxt", l "e" -: i 1)) ] );
            ] );
        Return (l "found");
      ];
  }

let compress_func =
  {
    mname = "compress";
    params = [ "src"; "out"; "prefix"; "ch"; "head"; "nxt" ];
    body =
      [
        Decl ("dsize", i 16);
        Decl ("w", Index (l "src", i 0));
        Decl ("outlen", i 0);
        Decl ("k", i 1);
        While
          ( l "k" <: Length (l "src"),
            [
              Decl ("c", Index (l "src", l "k"));
              Decl
                ( "f",
                  CallS
                    ( "find",
                      [ l "w"; l "c"; l "prefix"; l "ch"; l "head"; l "nxt" ]
                    ) );
              If
                ( l "f" >=: i 0,
                  [ Assign ("w", l "f") ],
                  [
                    SetIndex (l "out", l "outlen", l "w");
                    Assign ("outlen", l "outlen" +: i 1);
                    If
                      ( l "dsize" <: i 4096,
                        [
                          SetIndex (l "prefix", l "dsize", l "w");
                          SetIndex (l "ch", l "dsize", l "c");
                          Decl
                            ( "h",
                              Bin (And, (l "w" *: i 31) +: l "c", i 1023) );
                          SetIndex
                            (l "nxt", l "dsize", Index (l "head", l "h"));
                          SetIndex (l "head", l "h", l "dsize" +: i 1);
                          Assign ("dsize", l "dsize" +: i 1);
                        ],
                        [] );
                    Assign ("w", l "c");
                  ] );
              Assign ("k", l "k" +: i 1);
            ] );
        SetIndex (l "out", l "outlen", l "w");
        Return (l "outlen" +: i 1);
      ];
  }

(* Expand a code into tmp (in order); returns the length. *)
let expand_func =
  {
    mname = "expand";
    params = [ "code"; "tmp"; "prefix"; "ch" ];
    body =
      [
        Decl ("len", i 0);
        Decl ("c", l "code");
        While
          ( l "c" >=: i 16,
            [
              SetIndex (l "tmp", l "len", Index (l "ch", l "c"));
              Assign ("len", l "len" +: i 1);
              Assign ("c", Index (l "prefix", l "c"));
            ] );
        SetIndex (l "tmp", l "len", l "c");
        Assign ("len", l "len" +: i 1);
        (* reverse tmp[0..len) in place *)
        Decl ("a", i 0);
        Decl ("b", l "len" -: i 1);
        While
          ( l "a" <: l "b",
            [
              Decl ("t", Index (l "tmp", l "a"));
              SetIndex (l "tmp", l "a", Index (l "tmp", l "b"));
              SetIndex (l "tmp", l "b", l "t");
              Assign ("a", l "a" +: i 1);
              Assign ("b", l "b" -: i 1);
            ] );
        Return (l "len");
      ];
  }

let verify_func =
  {
    mname = "verify";
    params = [ "src"; "out"; "outlen"; "prefix"; "ch" ];
    body =
      [
        Decl ("tmp", NewArray (i 64));
        Decl ("pos", i 0);
        Decl ("j", i 0);
        While
          ( l "j" <: l "outlen",
            [
              Decl
                ( "len",
                  CallS
                    ("expand", [ Index (l "out", l "j"); l "tmp"; l "prefix"; l "ch" ])
                );
              Decl ("t", i 0);
              While
                ( l "t" <: l "len",
                  [
                    If
                      ( Index (l "tmp", l "t")
                        <>: Index (l "src", l "pos" +: l "t"),
                        [ Expr (CallS ("mix", [ i 999999 ])) ],
                        [] );
                    Assign ("t", l "t" +: i 1);
                  ] );
              Assign ("pos", l "pos" +: l "len");
              Assign ("j", l "j" +: i 1);
            ] );
        If
          ( l "pos" =: Length (l "src"),
            [ Expr (CallS ("mix", [ i 1 ])) ],
            [ Expr (CallS ("mix", [ i 777 ])) ] );
        Return (i 0);
      ];
  }

let round_func =
  {
    mname = "round";
    params = [ "k" ];
    body =
      [
        Workload_lib.reseed (l "k");
        Decl ("src", NewArray (i 600));
        Expr (CallS ("fill", [ l "src" ]));
        Decl ("prefix", NewArray (i 4096));
        Decl ("ch", NewArray (i 4096));
        Decl ("head", NewArray (i 1024));
        Decl ("nxt", NewArray (i 4096));
        Decl ("out", NewArray (i 700));
        Decl
          ( "outlen",
            CallS
              ( "compress",
                [ l "src"; l "out"; l "prefix"; l "ch"; l "head"; l "nxt" ] )
          );
        Expr (CallS ("mix", [ l "outlen" ]));
        Expr
          (CallS ("verify", [ l "src"; l "out"; l "outlen"; l "prefix"; l "ch" ]));
        Expr (CallS ("mix", [ Index (l "out", l "outlen" -: i 1) ]));
        Return (i 0);
      ];
  }

let build ~scale =
  Codegen.compile ~name
    (Workload_lib.program
       ~funcs:[ fill_func; find_func; compress_func; expand_func; verify_func;
                round_func ]
       ~rounds:(6 * scale) ~round_name:"round" ())

(** MiniJava: a small, explicitly-typed-by-name object language compiled to
    mini-JVM bytecode.

    The JVM workloads are written as MiniJava ASTs so that their bytecode
    has the shape of compiled Java: locals-heavy, field accesses through
    the constant pool (quickable), static and virtual calls, and longer
    basic blocks than idiomatic Forth -- the structural differences the
    paper highlights in Section 7.3.  Field accesses carry the class name
    explicitly; there is no type checker. *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr | And | Or | Xor
  | Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int  (** small literal: compiles to [iconst] *)
  | Big of int  (** constant-pool literal: compiles to quickable [ldc] *)
  | Local of string
  | StaticVar of string
  | Field of expr * string * string  (** receiver, class, field *)
  | Bin of binop * expr * expr
  | Neg of expr
  | CallS of string * expr list  (** static call *)
  | CallV of expr * string * expr list  (** virtual call: receiver, name *)
  | New of string
  | NewArray of expr
  | Index of expr * expr
  | Length of expr

type stmt =
  | Decl of string * expr  (** declare and initialise a local *)
  | Assign of string * expr
  | SetStatic of string * expr
  | SetField of expr * string * string * expr
      (** receiver, class, field, value *)
  | SetIndex of expr * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Switch of expr * (int * stmt list) list * stmt list
      (** compiles to [tableswitch] over the contiguous key range; the last
          list is the default branch.  No fall-through between cases. *)
  | Return of expr
  | Expr of expr  (** evaluate for effect, drop the value *)
  | Print of expr

type mthd = {
  mname : string;
  params : string list;  (** excluding the implicit [this]; virtual methods
                             get [this] as local 0 automatically *)
  body : stmt list;
}

type cls = {
  cname : string;
  super : string option;
  fields : string list;
  cmethods : mthd list;
}

type prog = {
  classes : cls list;
  funcs : mthd list;  (** static methods; must include [main] *)
}

(* Convenience constructors used heavily by the workloads. *)

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val i : int -> expr
val l : string -> expr

(** The mini-JVM instruction set.

    Closely follows the JVM's integer subset plus the object model
    instructions whose first execution must resolve symbolic references:
    [getfield], [putfield], [getstatic], [putstatic], [new], [ldc],
    [invokestatic] and [invokevirtual] are {e quickable} -- they rewrite
    themselves into their [_quick] versions at run time (Section 5.4 of the
    paper).  Quickable originals are non-relocatable (their routines call
    the resolver); quick versions are relocatable, as the paper arranges
    for its JVM. *)

type t = {
  (* constants and locals *)
  iconst : int;  (** operand: the value *)
  ldc : int;  (** operand: constant-pool index; quickable *)
  ldc_quick : int;  (** operand: resolved value *)
  iload : int;  (** operand: local index *)
  istore : int;
  iinc : int;  (** operands: local index, increment *)
  (* operand stack *)
  pop : int;
  dup : int;
  dup_x1 : int;
  swap : int;
  (* arithmetic *)
  iadd : int;
  isub : int;
  imul : int;
  idiv : int;
  irem : int;
  ineg : int;
  ishl : int;
  ishr : int;
  iand : int;
  ior : int;
  ixor : int;
  (* control *)
  goto : int;  (** operand: target slot *)
  tableswitch : int;
      (** operand: cp index of a [CP_switch]; a multi-target indirect VM
          branch -- the dispatch after it stays hard to predict under every
          technique, as the paper notes for VM-level indirect branches *)
  ifeq : int;
  ifne : int;
  iflt : int;
  ifge : int;
  if_icmpeq : int;
  if_icmpne : int;
  if_icmplt : int;
  if_icmpge : int;
  (* objects *)
  new_ : int;  (** operand: cp index; quickable *)
  new_quick : int;  (** operand: class id *)
  getfield : int;  (** operand: cp index; quickable *)
  getfield_quick : int;  (** operand: field offset *)
  putfield : int;
  putfield_quick : int;
  getstatic : int;
  getstatic_quick : int;  (** operand: static cell *)
  putstatic : int;
  putstatic_quick : int;
  (* arrays *)
  newarray : int;
  iaload : int;
  iastore : int;
  arraylength : int;
  (* calls *)
  invokestatic : int;  (** operand: cp index; quickable *)
  invokestatic_quick : int;  (** operand: method id *)
  invokevirtual : int;  (** operands: cp index, argc; quickable *)
  invokevirtual_quick : int;  (** operands: vtable index, argc *)
  return_ : int;
  ireturn : int;
  (* misc *)
  print_int : int;  (** non-relocatable: library call *)
}

val iset : Vmbp_vm.Instr_set.t
val ops : t

(** Dispatch-by-dispatch BTB traces of the paper's worked examples
    (Tables I-IV): for each executed dispatch, which BTB entry was
    consulted, what it predicted, and where execution actually went. *)

type row = {
  step : int;
  vm_instr : string;  (** the VM instruction whose dispatch executes *)
  btb_entry : string;  (** label of the dispatch branch, e.g. "br-A1" *)
  prediction : string;  (** predicted target label, or "-" when cold *)
  actual : string;
  correct : bool;
}

val trace :
  technique:Vmbp_core.Technique.t ->
  ?profile:Vmbp_vm.Profile.t ->
  program:Vmbp_vm.Program.t ->
  exec:Vmbp_core.Engine.exec ->
  skip:int ->
  take:int ->
  unit ->
  row list
(** Execute the program under the technique with an idealised BTB,
    recording dispatches [skip..skip+take).  Labels derive from instruction
    names; distinct executable copies of the same instruction get numeric
    suffixes, making replication visible in the trace. *)

val render : row list -> string

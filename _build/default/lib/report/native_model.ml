type t = {
  label : string;
  work_quality : float;
  compile_overhead_cycles_per_slot : float;
  relative_to_plain : float;
}

(* Simple native Forth compilers: good code, negligible compile time. *)
let bigforth =
  {
    label = "bigForth (model)";
    work_quality = 0.55;
    compile_overhead_cycles_per_slot = 40.;
    relative_to_plain = 0.;
  }

let iforth =
  {
    label = "iForth (model)";
    work_quality = 0.70;
    compile_overhead_cycles_per_slot = 60.;
    relative_to_plain = 0.;
  }

(* Kaffe JIT3: quick translation, moderate code quality. *)
let kaffe_jit =
  {
    label = "Kaffe JIT (model)";
    work_quality = 0.45;
    compile_overhead_cycles_per_slot = 400.;
    relative_to_plain = 0.;
  }

(* Kaffe's interpreter is an order of magnitude slower than a tuned
   threaded-code interpreter (paper Table V: ~8.3x the base run time). *)
let kaffe_interp =
  {
    label = "Kaffe interpreter (model)";
    work_quality = 0.;
    compile_overhead_cycles_per_slot = 0.;
    relative_to_plain = 8.3;
  }

(* Hotspot's interpreter: dynamically generated, highly tuned assembly,
   somewhat faster than a portable C interpreter (paper Table V: ~0.85x
   the base run time). *)
let hotspot_interp =
  {
    label = "Hotspot interpreter (model)";
    work_quality = 0.;
    compile_overhead_cycles_per_slot = 0.;
    relative_to_plain = 0.85;
  }

(* Hotspot mixed mode: highly optimizing JIT on the hot code. *)
let hotspot_mixed =
  {
    label = "Hotspot mixed (model)";
    work_quality = 0.28;
    compile_overhead_cycles_per_slot = 1500.;
    relative_to_plain = 0.;
  }

let cycles t ~cpu ~costs ~plain ~slots =
  if t.relative_to_plain > 0. then
    plain.Vmbp_core.Engine.cycles *. t.relative_to_plain
  else begin
    let m = plain.Vmbp_core.Engine.metrics in
    let dispatch_instrs =
      m.Vmbp_machine.Metrics.dispatches
      * costs.Vmbp_core.Costs.threaded_dispatch_instrs
    in
    let work =
      float_of_int (m.Vmbp_machine.Metrics.native_instrs - dispatch_instrs)
    in
    let exec_cycles = work *. t.work_quality /. cpu.Vmbp_machine.Cpu_model.ipc in
    exec_cycles +. (t.compile_overhead_cycles_per_slot *. float_of_int slots)
  end

let render ~headers ~rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value (List.nth_opt row c) ~default:"" in
           (* Right-align numbers, left-align the first column. *)
           if c = 0 then Printf.sprintf "%-*s" w cell
           else Printf.sprintf "%*s" w cell)
         widths)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row headers :: rule :: List.map render_row rows)
  ^ "\n"

let f2 v = Printf.sprintf "%.2f" v
let f0 v = Printf.sprintf "%.0f" v

let human_int v =
  let fv = float_of_int v in
  if abs v >= 10_000_000_000 then Printf.sprintf "%.1fG" (fv /. 1e9)
  else if abs v >= 10_000_000 then Printf.sprintf "%.1fM" (fv /. 1e6)
  else if abs v >= 10_000 then Printf.sprintf "%.1fK" (fv /. 1e3)
  else string_of_int v

(** Analytic comparator models for the paper's cross-system tables.

    The paper compares its interpreters against systems we cannot run
    (Hotspot, Kaffe, bigForth, iForth -- Tables V, IX and X).  Per the
    reproduction's substitution rule these are replaced by *documented
    models* derived from a plain-interpreter run: native code executes the
    interpreter's work instructions scaled by a per-compiler quality factor
    and pays no dispatch, while JIT models add a one-off compilation
    overhead proportional to program size.  The factors are calibrated so
    the *relationships* the paper reports hold (simple native compilers a
    small factor ahead of the best interpreters; Hotspot mixed mode far
    ahead; Kaffe's interpreter far behind); absolute values are not
    meaningful and the tables label these columns as models. *)

type t = {
  label : string;
  work_quality : float;
      (** native instructions emitted per interpreted work instruction
          (lower is better code); used when [relative_to_plain = 0.] *)
  compile_overhead_cycles_per_slot : float;
      (** one-off translation cost, per VM code slot *)
  relative_to_plain : float;
      (** when positive, the comparator is itself an interpreter and is
          modelled directly as this multiple of the plain run's total
          cycles (the paper's Table V ratios: Hotspot's assembly
          interpreter ~0.85x, Kaffe's interpreter ~8x) *)
}

val bigforth : t
val iforth : t
val kaffe_jit : t
val kaffe_interp : t
val hotspot_interp : t
val hotspot_mixed : t

val cycles :
  t ->
  cpu:Vmbp_machine.Cpu_model.t ->
  costs:Vmbp_core.Costs.t ->
  plain:Vmbp_core.Engine.result ->
  slots:int ->
  float
(** Modelled cycles for the comparator given the plain-interpreter run of
    the same workload: work instructions are estimated as
    [native_instrs - dispatches * threaded_dispatch_instrs]. *)

lib/report/runner.ml: Config Engine List Printf Technique Vmbp_core Vmbp_machine Vmbp_workloads

lib/report/runner.mli: Vmbp_core Vmbp_machine Vmbp_vm Vmbp_workloads

lib/report/native_model.ml: Vmbp_core Vmbp_machine

lib/report/experiments.mli: Vmbp_machine Vmbp_workloads

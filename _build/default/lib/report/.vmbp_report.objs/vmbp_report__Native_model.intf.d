lib/report/native_model.mli: Vmbp_core Vmbp_machine

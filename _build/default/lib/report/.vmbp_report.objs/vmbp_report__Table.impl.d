lib/report/table.ml: List Option Printf String

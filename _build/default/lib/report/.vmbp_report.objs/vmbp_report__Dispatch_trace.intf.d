lib/report/dispatch_trace.mli: Vmbp_core Vmbp_vm

lib/report/table.mli:

lib/report/dispatch_trace.ml: Array Btb Code_layout Config Control Cpu_model Hashtbl Instr List Option Printf Program String Table Technique Vmbp_core Vmbp_machine Vmbp_vm

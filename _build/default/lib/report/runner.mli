(** Running one workload under one interpreter configuration, with the
    paper's training-profile policy applied automatically. *)

type run = {
  workload : Vmbp_workloads.t;
  technique : Vmbp_core.Technique.t;
  cpu : Vmbp_machine.Cpu_model.t;
  result : Vmbp_core.Engine.result;
  output : string;
}

exception Run_failed of string
(** Raised when a run traps: reproduction results from a trapped run would
    be meaningless. *)

val run :
  ?scale:int ->
  ?predictor:Vmbp_machine.Predictor.kind ->
  ?profile:Vmbp_vm.Profile.t ->
  cpu:Vmbp_machine.Cpu_model.t ->
  technique:Vmbp_core.Technique.t ->
  Vmbp_workloads.t ->
  run
(** Default scale 1.  When the technique needs static selection and no
    [profile] is given, the paper's training policy for the workload's VM
    is used (see {!Vmbp_workloads.training_profile}). *)

val matrix :
  ?scale:int ->
  cpu:Vmbp_machine.Cpu_model.t ->
  techniques:Vmbp_core.Technique.t list ->
  Vmbp_workloads.t list ->
  (Vmbp_workloads.t * (Vmbp_core.Technique.t * run) list) list
(** The full benchmark-times-variant grid used by the speedup figures. *)

val speedup : baseline:run -> run -> float
(** Ratio of modelled cycles: how much faster than [baseline]. *)

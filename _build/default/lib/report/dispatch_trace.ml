open Vmbp_vm
open Vmbp_machine
open Vmbp_core

type row = {
  step : int;
  vm_instr : string;
  btb_entry : string;
  prediction : string;
  actual : string;
  correct : bool;
}

(* Stable labels for code addresses: the first copy of "a" is "A", later
   distinct copies are "A2", "A3", ... *)
type labeller = {
  by_addr : (int, string) Hashtbl.t;
  next_index : (string, int) Hashtbl.t;
}

let make_labeller () =
  { by_addr = Hashtbl.create 32; next_index = Hashtbl.create 32 }

let label lab ~addr ~base =
  match Hashtbl.find_opt lab.by_addr addr with
  | Some s -> s
  | None ->
      let base = String.uppercase_ascii base in
      let n = Option.value (Hashtbl.find_opt lab.next_index base) ~default:0 in
      Hashtbl.replace lab.next_index base (n + 1);
      let s = if n = 0 then base else Printf.sprintf "%s%d" base (n + 1) in
      Hashtbl.replace lab.by_addr addr s;
      s

let trace ~technique ?profile ~program ~exec ~skip ~take () =
  let config = Config.make ~cpu:Cpu_model.ideal technique in
  let layout = Config.build_layout ?profile config ~program in
  let program = layout.Code_layout.program in
  let btb = Btb.create Btb.ideal in
  let entry_labels = make_labeller () in
  let branch_labels = make_labeller () in
  let rows = ref [] in
  let count = ref 0 in
  let pending = ref (-1) in
  let pending_instr = ref "" in
  let pending_branch = ref "" in
  let is_switch = technique = Technique.Switch in
  (* Names of the slots executed since the last dispatch: a superinstruction
     shows up as the joined names of its components, as in the paper's
     Table IV ("B_A"). *)
  let group = ref [] in
  let pc = ref program.Program.entry in
  let running = ref true in
  while !running do
    let i = !pc in
    let site = layout.Code_layout.sites.(i) in
    let name = (Program.instr_at program i).Instr.name in
    let entry = site.Code_layout.entry_addr in
    if !pending >= 0 then begin
      let target_label = label entry_labels ~addr:entry ~base:name in
      let prediction =
        match Btb.predict btb ~branch:!pending with
        | Some addr -> label entry_labels ~addr ~base:"?"
        | None -> "-"
      in
      let correct = Btb.access btb ~branch:!pending ~target:entry in
      if !count >= skip && !count < skip + take then
        rows :=
          {
            step = !count - skip + 1;
            vm_instr = !pending_instr;
            btb_entry = "br-" ^ !pending_branch;
            prediction;
            actual = target_label;
            correct;
          }
          :: !rows;
      incr count;
      if !count >= skip + take then running := false
    end;
    if !running then begin
      group := name :: !group;
      let issue (d : Code_layout.dispatch) =
        pending := d.Code_layout.branch_addr;
        let group_name = String.concat "_" (List.rev !group) in
        pending_instr := String.uppercase_ascii group_name;
        pending_branch :=
          label branch_labels ~addr:d.Code_layout.branch_addr
            ~base:(if is_switch then "switch" else group_name);
        group := []
      in
      (match exec program i with
      | Control.Next ->
          (match site.Code_layout.post_fall with
          | Some d -> issue d
          | None -> pending := -1);
          pc := i + 1
      | Control.Jump target ->
          (match site.Code_layout.post_taken with
          | Some d -> issue d
          | None ->
              pending := -1;
              group := []);
          pc := target
      | Control.Halt | Control.Trap _ -> running := false
      | Control.Quicken _ -> running := false)
    end
  done;
  List.rev !rows

let render rows =
  Table.render
    ~headers:[ "#"; "VM instr"; "BTB entry"; "prediction"; "actual"; "" ]
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.step;
             r.vm_instr;
             r.btb_entry;
             r.prediction;
             r.actual;
             (if r.correct then "hit" else "MISS");
           ])
         rows)

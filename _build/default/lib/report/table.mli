(** Plain-text table rendering for the reproduction reports. *)

val render : headers:string list -> rows:string list list -> string
(** Column-aligned table with a rule under the header. *)

val f2 : float -> string
(** Two-decimal rendering. *)

val f0 : float -> string
val human_int : int -> string
(** 12345678 -> "12.3M"-style rendering for counter values. *)

(** Partitioning an instruction range into superinstructions and singles.

    Given the set of available static superinstructions, a stretch of VM
    code must be split into groups, each group either a single instruction
    or a known superinstruction.  This is the "dictionary-based compression
    with a static dictionary" problem of Section 5.1.  Both algorithms the
    paper examines are provided: greedy (maximum munch) and optimal
    (dynamic programming, minimising the number of groups and hence of
    dispatches). *)

type group = {
  start : int;  (** first slot of the group *)
  len : int;  (** number of component slots; 1 = single instruction *)
}

val greedy :
  Super_set.t ->
  opcodes:(int -> int) ->
  eligible:(int -> bool) ->
  start:int ->
  stop:int ->
  group list
(** Maximum munch left to right.  A superinstruction may only cover slots
    for which [eligible] holds (non-quickable, straight-line, and for the
    dynamic combinations relocatable); ineligible slots become singleton
    groups. *)

val optimal :
  Super_set.t ->
  opcodes:(int -> int) ->
  eligible:(int -> bool) ->
  start:int ->
  stop:int ->
  group list
(** Minimum number of groups via dynamic programming.  Ties are broken
    towards the greedy solution's structure (prefer longer first match). *)

val group_count : group list -> int
val pp : Format.formatter -> group list -> unit

type t = {
  table : (string, int array) Hashtbl.t;
  max_len : int;
}

let key seq = String.concat "," (List.map string_of_int (Array.to_list seq))

let empty = { table = Hashtbl.create 1; max_len = 0 }

let of_list seqs =
  let table = Hashtbl.create (List.length seqs * 2) in
  let max_len =
    List.fold_left
      (fun acc seq ->
        if Array.length seq < 2 then acc
        else begin
          Hashtbl.replace table (key seq) seq;
          max acc (Array.length seq)
        end)
      0 seqs
  in
  { table; max_len }

let size t = Hashtbl.length t.table
let max_len t = t.max_len
let mem t seq = Hashtbl.mem t.table (key seq)
let to_list t = Hashtbl.fold (fun _ seq acc -> seq :: acc) t.table []

let match_lengths t ~opcodes ~pos ~limit =
  let longest = min t.max_len (limit - pos + 1) in
  (* Scan lengths downwards so the result is longest-first. *)
  let rec scan l acc =
    if l < 2 then List.rev acc
    else
      let seq = Array.init l (fun i -> opcodes (pos + i)) in
      scan (l - 1) (if mem t seq then l :: acc else acc)
  in
  scan longest []

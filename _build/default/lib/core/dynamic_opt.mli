(** Layout builder for the run-time code-copying techniques (Section 5.2).

    Dynamic replication copies the executable routine of every VM
    instruction instance; dynamic superinstructions concatenate the
    routines of a basic block, eliding interior dispatches (and, across
    basic blocks, all dispatches except taken VM branches, calls and
    returns).  Non-relocatable instructions are not copied: the threaded
    code jumps to the single original routine.  Quickable instructions
    leave a gap in the copied code, initially holding a dispatch to the
    original routine; quickening patches the quick routine into the gap
    (Section 5.4). *)

val build :
  ?profile:Vmbp_vm.Profile.t ->
  costs:Costs.t ->
  technique:Technique.t ->
  program:Vmbp_vm.Program.t ->
  unit ->
  Code_layout.t
(** [technique] must be one of [Dynamic_repl], [Dynamic_super],
    [Dynamic_both], [Across_bb], [With_static_super _] or
    [With_static_across_bb _]; the latter two require a [profile] for
    superinstruction selection.  The returned layout owns a private copy
    of [program].
    @raise Invalid_argument on a static technique or missing profile. *)

open Vmbp_vm

type item = Single of int | Super of int array

let select ~profile ~params =
  let n = params.Technique.superinstrs in
  if n = 0 then Super_set.empty
  else
    Super_set.of_list
      (Profile.top_sequences profile ~prefer_short:params.Technique.prefer_short
         ~n ())

let replica_weights ~profile ~iset ~supers =
  let single_weights = ref [] in
  Instr_set.iter iset (fun instr ->
      let opcode = instr.Instr.opcode in
      let weight = Profile.opcode_count profile opcode in
      (* Quickable originals run once per code site and are never
         replicated; push their frequency onto the quick versions. *)
      if instr.Instr.quickable then
        List.iter
          (fun quick ->
            single_weights :=
              (Single quick,
               weight + Profile.opcode_count profile quick)
              :: !single_weights)
          instr.Instr.quick_targets
      else if instr.Instr.quick_of = None then
        single_weights := (Single opcode, weight) :: !single_weights);
  let super_weights =
    List.map
      (fun seq -> (Super seq, Profile.sequence_count profile seq))
      (Super_set.to_list supers)
  in
  List.rev !single_weights @ super_weights

(** One experiment configuration: a technique on a CPU profile. *)

type t = {
  technique : Technique.t;
  cpu : Vmbp_machine.Cpu_model.t;
  predictor_override : Vmbp_machine.Predictor.kind option;
      (** replace the CPU's predictor, e.g. to sweep BTB sizes *)
  costs : Costs.t;
}

val make :
  ?cpu:Vmbp_machine.Cpu_model.t ->
  ?predictor:Vmbp_machine.Predictor.kind ->
  ?costs:Costs.t ->
  Technique.t ->
  t
(** Defaults: the Pentium 4 Northwood profile and the default costs. *)

val predictor_kind : t -> Vmbp_machine.Predictor.kind

val build_layout :
  ?profile:Vmbp_vm.Profile.t ->
  t ->
  program:Vmbp_vm.Program.t ->
  Code_layout.t
(** Dispatch to the static or dynamic layout builder. *)

type chooser =
  | Round_robin of (int, int ref) Hashtbl.t
  | Random of Random.State.t

let make_chooser = function
  | Technique.Round_robin -> Round_robin (Hashtbl.create 64)
  | Technique.Random seed -> Random (Random.State.make [| seed |])

let choose t ~item ~copies =
  if copies <= 0 then invalid_arg "Replica_select.choose: no copies";
  match t with
  | Round_robin counters ->
      let counter =
        match Hashtbl.find_opt counters item with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.replace counters item r;
            r
      in
      let k = !counter mod copies in
      incr counter;
      k
  | Random state -> Random.State.int state copies

(* Highest-averages apportionment: hand out one copy at a time to the item
   whose weight/copies ratio is currently largest.  A simple priority scan
   is fine at the scale of an instruction set (a few hundred items). *)
let apportion ~weights ~budget =
  if weights = [] then []
  else begin
  let items = Array.of_list weights in
  let copies = Array.make (Array.length items) 1 in
  let ratio i =
    let w, c = (float_of_int (snd items.(i)), float_of_int copies.(i)) in
    w /. c
  in
  for _ = 1 to budget do
    let best = ref 0 in
    for i = 1 to Array.length items - 1 do
      if ratio i > ratio !best then best := i
    done;
    if snd items.(!best) > 0 then copies.(!best) <- copies.(!best) + 1
  done;
  Array.to_list (Array.mapi (fun i (item, _) -> (item, copies.(i))) items)
  end

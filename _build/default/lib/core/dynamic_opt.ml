open Vmbp_vm
open Vmbp_machine

(* What kind of dynamic layout is being built. *)
type mode = {
  technique : Technique.t;
  per_slot_dispatch : bool;  (* dynamic replication: dispatch after every slot *)
  across_bb : bool;  (* elide fall-through dispatches at block ends *)
  share_blocks : bool;  (* share code of identical basic blocks *)
  static_params : Technique.static_params option;  (* fold static supers *)
  supers_cross_leaders : bool;  (* With_static_across_bb *)
}

let mode_of_technique technique =
  let base =
    {
      technique;
      per_slot_dispatch = false;
      across_bb = false;
      share_blocks = false;
      static_params = None;
      supers_cross_leaders = false;
    }
  in
  match technique with
  | Technique.Dynamic_repl -> { base with per_slot_dispatch = true }
  | Technique.Dynamic_super -> { base with share_blocks = true }
  | Technique.Dynamic_both -> base
  | Technique.Across_bb -> { base with across_bb = true }
  | Technique.With_static_super params ->
      { base with across_bb = true; static_params = Some params }
  | Technique.With_static_across_bb params ->
      {
        base with
        across_bb = true;
        static_params = Some params;
        supers_cross_leaders = true;
      }
  | Technique.Switch | Technique.Plain | Technique.Static _
  | Technique.Subroutine ->
      invalid_arg "Dynamic_opt.build: unsupported technique"

(* Shared original routines (the base interpreter): one per opcode,
   allocated outside the runtime code region. *)
type originals = {
  iset : Instr_set.t;
  costs : Costs.t;
  static_alloc : Memory_layout.t;
  table : (int, int) Hashtbl.t;  (* opcode -> routine address *)
}

let original_addr o opcode =
  match Hashtbl.find_opt o.table opcode with
  | Some addr -> addr
  | None ->
      let instr = Instr_set.get o.iset opcode in
      let addr =
        Memory_layout.alloc o.static_alloc
          ~bytes:(instr.Instr.work_bytes + o.costs.Costs.threaded_dispatch_bytes)
      in
      Hashtbl.replace o.table opcode addr;
      addr

let original_branch o opcode =
  original_addr o opcode + (Instr_set.get o.iset opcode).Instr.work_bytes

(* Per-slot classification. *)
type cls =
  | Copied  (* relocatable, copied into the runtime code *)
  | Original  (* non-relocatable: executes the shared original routine *)
  | Quickable  (* gap in the copy; original routine until quickened *)

let classify (p : Program.t) i =
  let instr = Program.instr_at p i in
  if instr.Instr.quickable then Quickable
  else if instr.Instr.relocatable then Copied
  else Original

(* Grouping: each slot belongs to a group of [len] components starting at
   [start]; groups of length > 1 are static superinstructions folded into
   the dynamic code. *)
type grouping = { group_start : int array; group_len : int array }

let trivial_grouping n =
  { group_start = Array.init n (fun i -> i); group_len = Array.make n 1 }

let grouping_of_parse n groups =
  let g = trivial_grouping n in
  List.iter
    (fun { Block_parse.start; len } ->
      for k = 0 to len - 1 do
        g.group_start.(start + k) <- start;
        g.group_len.(start + k) <- len
      done)
    groups;
  g

(* Compute static-superinstruction grouping for the whole program.  Runs of
   eligible slots (straight-line, relocatable, not quickable) are parsed
   with the configured algorithm; runs stop at basic-block ends and --
   unless [supers_cross_leaders] -- at block leaders. *)
let compute_grouping mode ?profile (p : Program.t) (bb : Basic_block.t) =
  let n = Program.length p in
  match mode.static_params with
  | None -> trivial_grouping n
  | Some params ->
      let profile =
        match profile with
        | Some prof -> prof
        | None ->
            invalid_arg "Dynamic_opt.build: static superinstructions need a profile"
      in
      let supers = Superinstr_select.select ~profile ~params in
      let opcodes i = p.Program.code.(i).Program.opcode in
      let parse =
        match params.Technique.parse with
        | Technique.Greedy -> Block_parse.greedy
        | Technique.Optimal -> Block_parse.optimal
      in
      let groups = ref [] in
      let component_ok i =
        let instr = Program.instr_at p i in
        (not instr.Instr.quickable)
        && instr.Instr.relocatable
        && match instr.Instr.branch with Instr.Straight -> true | _ -> false
      in
      let run_stop start =
        (* Extend the run while slots remain plain components and, when
           supers must respect block boundaries, while no leader is crossed. *)
        let rec loop i =
          if i >= n || not (component_ok i) then i - 1
          else if (not mode.supers_cross_leaders) && bb.Basic_block.leader.(i)
                  && i > start then i - 1
          else loop (i + 1)
        in
        loop start
      in
      let i = ref 0 in
      while !i < n do
        if component_ok !i then begin
          let stop = run_stop !i in
          groups := parse supers ~opcodes ~eligible:component_ok ~start:!i ~stop
                    :: !groups;
          i := stop + 1
        end
        else incr i
      done;
      grouping_of_parse n (List.concat !groups)

(* Whether, in steady state (after quickening), the fall-through path of
   group-final slot [i] still executes a dispatch. *)
let fall_dispatch mode (p : Program.t) (bb : Basic_block.t) i =
  let n = Program.length p in
  let next_not_contiguous = i + 1 < n && classify p (i + 1) = Original in
  if mode.per_slot_dispatch then true
  else if mode.across_bb then next_not_contiguous
  else
    (* Within-block superinstructions: dispatch at every block end and
       before any non-copied slot. *)
    i = bb.Basic_block.blocks.(bb.Basic_block.block_of_slot.(i)).Basic_block.stop
    || next_not_contiguous

(* Per-slot plan retained for quickening. *)
type plan = {
  gap_addr : int;  (* -1 when the slot has no gap *)
  fall_dispatches : bool;  (* steady-state fall-through dispatch *)
}

type builder = {
  mode : mode;
  costs : Costs.t;
  originals : originals;
  plans : plan array;
}

let dispatch o ~branch_addr =
  Some
    {
      Code_layout.branch_addr;
      instrs = o.costs.Costs.threaded_dispatch_instrs;
    }

(* Install the steady-state site of a quickened slot: the quick routine
   patched into the gap. *)
let install_quick b (layout : Code_layout.t) slot =
  let p = layout.Code_layout.program in
  let plan = b.plans.(slot) in
  let instr = Program.instr_at p slot in
  let costs = b.costs in
  let site = layout.Code_layout.sites.(slot) in
  let branch_addr = plan.gap_addr + instr.Instr.work_bytes in
  site.Code_layout.entry_addr <- plan.gap_addr;
  site.Code_layout.fetch_addr <- plan.gap_addr;
  site.Code_layout.work_instrs <- instr.Instr.work_instrs;
  site.Code_layout.pre_dispatch <- None;
  site.Code_layout.post_taken <- dispatch b ~branch_addr;
  if plan.fall_dispatches then begin
    site.Code_layout.post_fall <- dispatch b ~branch_addr;
    site.Code_layout.fetch_bytes <-
      instr.Instr.work_bytes + costs.Costs.threaded_dispatch_bytes;
    site.Code_layout.fall_extra_instrs <- 0
  end
  else begin
    site.Code_layout.post_fall <- None;
    site.Code_layout.fetch_bytes <-
      instr.Instr.work_bytes + costs.Costs.ip_inc_bytes;
    site.Code_layout.fall_extra_instrs <- costs.Costs.ip_inc_instrs
  end;
  (* Keep the non-replicated fallback in sync when it is distinct. *)
  if layout.Code_layout.shadow != layout.Code_layout.sites then begin
    let sh = layout.Code_layout.shadow.(slot) in
    let opcode = p.Program.code.(slot).Program.opcode in
    let addr = original_addr b.originals opcode in
    sh.Code_layout.entry_addr <- addr;
    sh.Code_layout.fetch_addr <- addr;
    sh.Code_layout.fetch_bytes <-
      instr.Instr.work_bytes + costs.Costs.threaded_dispatch_bytes;
    sh.Code_layout.work_instrs <- instr.Instr.work_instrs;
    sh.Code_layout.pre_dispatch <- None;
    let d = dispatch b ~branch_addr:(original_branch b.originals opcode) in
    sh.Code_layout.post_fall <- d;
    sh.Code_layout.post_taken <- d;
    sh.Code_layout.fall_extra_instrs <- 0
  end

let build ?profile ~costs ~technique ~program () =
  let mode = mode_of_technique technique in
  let program = Program.copy program in
  let iset = program.Program.iset in
  let n = Program.length program in
  let bb = Basic_block.analyze program in
  let originals =
    {
      iset;
      costs;
      static_alloc = Memory_layout.create ();
      table = Hashtbl.create 256;
    }
  in
  (* Reserve original routines for every opcode up front so static and
     runtime regions do not interleave. *)
  Instr_set.iter iset (fun instr -> ignore (original_addr originals instr.Instr.opcode));
  let dyn_alloc = Memory_layout.create ~base:0x4000000 ~align:4 () in
  let grouping = compute_grouping mode ?profile program bb in
  let plans = Array.make n { gap_addr = -1; fall_dispatches = true } in
  let sites =
    Array.init n (fun _ -> Code_layout.make_site ~entry:0 ~fetch:0 ~bytes:0 ~instrs:0)
  in
  let shadow_needed = mode.supers_cross_leaders in
  let shadow =
    if shadow_needed then
      Array.init n (fun _ ->
          Code_layout.make_site ~entry:0 ~fetch:0 ~bytes:0 ~instrs:0)
    else sites
  in
  let shadow_until = Array.make n (-1) in
  let b = { mode; costs; originals; plans } in
  (* Fill a shadow site with the shared original routine of the slot. *)
  let fill_shadow i =
    let opcode = program.Program.code.(i).Program.opcode in
    let instr = Instr_set.get iset opcode in
    let addr = original_addr originals opcode in
    let sh = shadow.(i) in
    sh.Code_layout.entry_addr <- addr;
    sh.Code_layout.fetch_addr <- addr;
    sh.Code_layout.fetch_bytes <-
      instr.Instr.work_bytes + costs.Costs.threaded_dispatch_bytes;
    sh.Code_layout.work_instrs <- instr.Instr.work_instrs;
    let d = dispatch b ~branch_addr:(original_branch originals opcode) in
    sh.Code_layout.post_fall <- d;
    sh.Code_layout.post_taken <- d;
    sh.Code_layout.fall_extra_instrs <- 0
  in
  if shadow_needed then
    for i = 0 to n - 1 do
      fill_shadow i
    done;

  (* Lay out the copied code of one slot range [lo..hi] contiguously,
     returning the bytes allocated.  Used both for private block copies and
     for the single copy of a set of identical shared blocks. *)
  let layout_range lo hi =
    let bytes_before = Memory_layout.used_bytes dyn_alloc in
    let i = ref lo in
    while !i <= hi do
      let slot = !i in
      let instr = Program.instr_at program slot in
      let glen = grouping.group_len.(slot) in
      let gstart = grouping.group_start.(slot) in
      (match classify program slot with
      | Original ->
          let opcode = program.Program.code.(slot).Program.opcode in
          let addr = original_addr originals opcode in
          let site = sites.(slot) in
          site.Code_layout.entry_addr <- addr;
          site.Code_layout.fetch_addr <- addr;
          site.Code_layout.fetch_bytes <-
            instr.Instr.work_bytes + costs.Costs.threaded_dispatch_bytes;
          site.Code_layout.work_instrs <- instr.Instr.work_instrs;
          let d = dispatch b ~branch_addr:(original_branch originals opcode) in
          site.Code_layout.post_fall <- d;
          site.Code_layout.post_taken <- d;
          site.Code_layout.fall_extra_instrs <- 0;
          i := slot + 1
      | Quickable ->
          (* Gap sized for the largest quick version plus a dispatch; the
             gap starts with dispatch code jumping to the original. *)
          let gap_bytes =
            Instr_set.max_quick_bytes iset instr.Instr.opcode
            + costs.Costs.threaded_dispatch_bytes
          in
          let gap_addr = Memory_layout.alloc dyn_alloc ~bytes:gap_bytes in
          let fall_dispatches = fall_dispatch mode program bb slot in
          plans.(slot) <- { gap_addr; fall_dispatches };
          let opcode = instr.Instr.opcode in
          let orig = original_addr originals opcode in
          let site = sites.(slot) in
          let d = dispatch b ~branch_addr:(original_branch originals opcode) in
          if mode.per_slot_dispatch then begin
            (* Dynamic replication jumps straight to the original routine;
               the gap is only space for the later patch. *)
            site.Code_layout.entry_addr <- orig;
            site.Code_layout.pre_dispatch <- None
          end
          else begin
            (* Inside a dynamic superinstruction the gap begins with
               dispatch code that jumps to the original routine. *)
            site.Code_layout.entry_addr <- gap_addr;
            site.Code_layout.pre_dispatch <-
              Some
                {
                  Code_layout.branch_addr = gap_addr;
                  instrs = costs.Costs.threaded_dispatch_instrs;
                }
          end;
          site.Code_layout.fetch_addr <- orig;
          site.Code_layout.fetch_bytes <-
            instr.Instr.work_bytes + costs.Costs.threaded_dispatch_bytes;
          site.Code_layout.work_instrs <- instr.Instr.work_instrs;
          site.Code_layout.post_fall <- d;
          site.Code_layout.post_taken <- d;
          site.Code_layout.fall_extra_instrs <- 0;
          i := slot + 1
      | Copied ->
          (* Lay out the whole group (a single instruction or a folded
             static superinstruction) at once. *)
          assert (gstart = slot);
          let last = gstart + glen - 1 in
          for k = 0 to glen - 1 do
            let s = gstart + k in
            let comp = Program.instr_at program s in
            let body_bytes, body_instrs =
              if k = 0 then (comp.Instr.work_bytes, comp.Instr.work_instrs)
              else
                ( max 1
                    (comp.Instr.work_bytes - costs.Costs.static_super_saving_bytes),
                  max 1
                    (comp.Instr.work_instrs
                    - costs.Costs.static_super_saving_instrs) )
            in
            let fall_dispatches = k = glen - 1 && fall_dispatch mode program bb last in
            let is_branchy =
              match comp.Instr.branch with
              | Instr.Straight -> false
              | _ -> true
            in
            let tail_bytes =
              if k < glen - 1 then 0
              else if fall_dispatches || is_branchy then
                costs.Costs.threaded_dispatch_bytes
              else costs.Costs.ip_inc_bytes
            in
            let addr =
              Memory_layout.alloc dyn_alloc ~bytes:(body_bytes + tail_bytes)
            in
            let site = sites.(s) in
            site.Code_layout.entry_addr <- addr;
            site.Code_layout.fetch_addr <- addr;
            site.Code_layout.fetch_bytes <- body_bytes + tail_bytes;
            site.Code_layout.work_instrs <- body_instrs;
            site.Code_layout.pre_dispatch <- None;
            if k < glen - 1 then begin
              site.Code_layout.post_fall <- None;
              site.Code_layout.post_taken <- None;
              site.Code_layout.fall_extra_instrs <- 0
            end
            else begin
              let branch_addr = addr + body_bytes in
              site.Code_layout.post_taken <- dispatch b ~branch_addr;
              if fall_dispatches then begin
                site.Code_layout.post_fall <- dispatch b ~branch_addr;
                site.Code_layout.fall_extra_instrs <- 0
              end
              else begin
                (* Dispatch elided but the ip increment is kept
                   (Section 6.1). *)
                site.Code_layout.post_fall <- None;
                site.Code_layout.fall_extra_instrs <- costs.Costs.ip_inc_instrs
              end
            end;
            (* Interior components that are branch targets need the shadow
               path: a side entry runs non-replicated code to group end. *)
            if k > 0 && bb.Basic_block.leader.(s) then shadow_until.(s) <- last
          done;
          i := last + 1);
      ()
    done;
    Memory_layout.used_bytes dyn_alloc - bytes_before
  in

  (* Dynamic superinstructions without replication share the code of
     identical basic blocks (all-relocatable, quickable-free ones). *)
  let shared : (string, Code_layout.site array) Hashtbl.t = Hashtbl.create 64 in
  let block_shareable (blk : Basic_block.block) =
    mode.share_blocks
    && (let ok = ref true in
        for i = blk.Basic_block.start to blk.Basic_block.stop do
          if classify program i <> Copied then ok := false
        done;
        !ok)
  in
  (* Identical-block sharing needs per-block layout; every other mode lays
     the whole program out contiguously so that fall-through between blocks
     stays inside the copied code (across-bb superinstructions, Figure 5). *)
  if mode.share_blocks then
    Array.iter
      (fun (blk : Basic_block.block) ->
        let lo = blk.Basic_block.start and hi = blk.Basic_block.stop in
        if block_shareable blk then begin
          let key = Basic_block.opcode_key program blk in
          match Hashtbl.find_opt shared key with
          | Some master_sites ->
              for k = 0 to hi - lo do
                Code_layout.copy_site_into ~src:master_sites.(k)
                  ~dst:sites.(lo + k)
              done
          | None ->
              ignore (layout_range lo hi);
              Hashtbl.replace shared key
                (Array.init (hi - lo + 1) (fun k -> sites.(lo + k)))
        end
        else ignore (layout_range lo hi))
      bb.Basic_block.blocks
  else if n > 0 then ignore (layout_range 0 (n - 1));

  let layout =
    {
      Code_layout.program;
      technique;
      costs;
      sites;
      shadow;
      shadow_until;
      runtime_code_bytes = Memory_layout.used_bytes dyn_alloc;
      on_quicken = (fun _ ~slot:_ -> ());
    }
  in
  layout.Code_layout.on_quicken <-
    (fun l ~slot ->
      if b.plans.(slot).gap_addr >= 0 then install_quick b l slot
      else
        invalid_arg "Dynamic_opt: quickening a slot without a gap");
  layout

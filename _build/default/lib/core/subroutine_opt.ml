open Vmbp_vm
open Vmbp_machine

(* Native call instruction emitted per VM code slot (x86 call rel32). *)
let call_bytes = 5

(* Call + return overhead executed around every routine body. *)
let call_ret_instrs = 2

let build ~costs ~program () =
  let program = Program.copy program in
  let iset = program.Program.iset in
  let static_alloc = Memory_layout.create () in
  (* Shared routines, one per opcode, ending in a native return. *)
  let routine = Hashtbl.create 64 in
  Instr_set.iter iset (fun instr ->
      let addr =
        Memory_layout.alloc static_alloc
          ~bytes:(instr.Instr.work_bytes + 4 (* ret + branch glue *))
      in
      Hashtbl.replace routine instr.Instr.opcode addr);
  let n = Program.length program in
  (* The generated call-site stream: one call per slot, contiguous. *)
  let dyn_alloc = Memory_layout.create ~base:0x4000000 ~align:1 () in
  let call_site = Array.init n (fun _ -> Memory_layout.alloc dyn_alloc ~bytes:call_bytes) in
  let sites =
    Array.init n (fun _ -> Code_layout.make_site ~entry:0 ~fetch:0 ~bytes:0 ~instrs:0)
  in
  let fill slot =
    let instr = Program.instr_at program slot in
    let orig = Hashtbl.find routine instr.Instr.opcode in
    let site = sites.(slot) in
    site.Code_layout.entry_addr <- call_site.(slot);
    site.Code_layout.call_fetch_addr <- call_site.(slot);
    site.Code_layout.call_fetch_bytes <- call_bytes;
    site.Code_layout.fetch_addr <- orig;
    site.Code_layout.fetch_bytes <- instr.Instr.work_bytes + 4;
    site.Code_layout.work_instrs <- instr.Instr.work_instrs + call_ret_instrs;
    site.Code_layout.pre_dispatch <- None;
    (* Fall-through is the next native call: direct, no BTB event. *)
    site.Code_layout.post_fall <- None;
    site.Code_layout.fall_extra_instrs <- 0;
    (* Taken VM transfers redirect the call-stream pointer with an indirect
       jump inside the transfer routine: one BTB event, keyed per call
       site (the routine reads its return address). *)
    site.Code_layout.post_taken <-
      (match instr.Instr.branch with
      | Instr.Straight -> None
      | Instr.Cond_branch _ | Instr.Uncond_branch _ | Instr.Indirect_branch
      | Instr.Call _ | Instr.Indirect_call | Instr.Return | Instr.Stop ->
          Some
            {
              Code_layout.branch_addr = call_site.(slot) + 1;
              instrs = 2;
            })
  in
  for slot = 0 to n - 1 do
    fill slot
  done;
  let layout =
    {
      Code_layout.program;
      technique = Technique.Subroutine;
      costs;
      sites;
      shadow = sites;
      shadow_until = Array.make n (-1);
      runtime_code_bytes = Memory_layout.used_bytes dyn_alloc;
      on_quicken = (fun _ ~slot:_ -> ());
    }
  in
  (* Quickening simply retargets the slot's call at the quick routine. *)
  layout.Code_layout.on_quicken <- (fun _l ~slot -> fill slot);
  layout

lib/core/subroutine_opt.ml: Array Code_layout Hashtbl Instr Instr_set Memory_layout Program Technique Vmbp_machine Vmbp_vm

lib/core/superinstr_select.ml: Instr Instr_set List Profile Super_set Technique Vmbp_vm

lib/core/block_parse.mli: Format Super_set

lib/core/block_parse.ml: Array Format List Super_set

lib/core/config.mli: Code_layout Costs Technique Vmbp_machine Vmbp_vm

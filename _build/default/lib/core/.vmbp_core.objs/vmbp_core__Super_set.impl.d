lib/core/super_set.ml: Array Hashtbl List String

lib/core/technique.mli:

lib/core/dynamic_opt.ml: Array Basic_block Block_parse Code_layout Costs Hashtbl Instr Instr_set List Memory_layout Program Superinstr_select Technique Vmbp_machine Vmbp_vm

lib/core/costs.mli:

lib/core/super_set.mli:

lib/core/costs.ml:

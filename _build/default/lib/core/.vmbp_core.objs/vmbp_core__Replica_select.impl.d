lib/core/replica_select.ml: Array Hashtbl Random Technique

lib/core/replica_select.mli: Technique

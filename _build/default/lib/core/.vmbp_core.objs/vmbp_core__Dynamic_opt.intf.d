lib/core/dynamic_opt.mli: Code_layout Costs Technique Vmbp_vm

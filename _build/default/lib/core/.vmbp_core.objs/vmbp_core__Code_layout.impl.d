lib/core/code_layout.ml: Array Costs Program Technique Vmbp_vm

lib/core/subroutine_opt.mli: Code_layout Costs Vmbp_vm

lib/core/engine.mli: Code_layout Config Vmbp_machine Vmbp_vm

lib/core/config.ml: Costs Dynamic_opt Static_opt Subroutine_opt Technique Vmbp_machine

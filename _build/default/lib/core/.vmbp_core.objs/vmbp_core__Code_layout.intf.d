lib/core/code_layout.mli: Costs Technique Vmbp_vm

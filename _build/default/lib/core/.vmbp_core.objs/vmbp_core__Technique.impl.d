lib/core/technique.ml: String

lib/core/engine.ml: Array Code_layout Config Control Costs Cpu_model Icache Instr Metrics Predictor Program Vmbp_machine Vmbp_vm

lib/core/superinstr_select.mli: Super_set Technique Vmbp_vm

type t = {
  threaded_dispatch_instrs : int;
  threaded_dispatch_bytes : int;
  switch_dispatch_instrs : int;
  switch_dispatch_bytes : int;
  ip_inc_instrs : int;
  ip_inc_bytes : int;
  static_super_saving_instrs : int;
  static_super_saving_bytes : int;
}

let default =
  {
    threaded_dispatch_instrs = 3;
    threaded_dispatch_bytes = 10;
    switch_dispatch_instrs = 9;
    switch_dispatch_bytes = 24;
    ip_inc_instrs = 1;
    ip_inc_bytes = 3;
    static_super_saving_instrs = 1;
    static_super_saving_bytes = 3;
  }

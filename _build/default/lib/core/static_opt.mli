(** Layout builder for the build-time techniques: switch dispatch, plain
    threaded code, and static replication / superinstructions
    (Section 5.1).

    The builder creates one simulated routine per instruction copy --
    singles, replicas, and superinstructions -- and assigns every program
    slot to a copy, using round-robin or random selection.  Quickable
    instructions are not replicated; their quick versions are, and the
    replica is chosen when the instruction quickens.  When the last
    quickable instruction of a basic block has quickened, the block is
    re-parsed so quick instructions can join superinstructions
    (Section 5.4). *)

val build :
  ?profile:Vmbp_vm.Profile.t ->
  costs:Costs.t ->
  technique:Technique.t ->
  program:Vmbp_vm.Program.t ->
  unit ->
  Code_layout.t
(** [technique] must be [Switch], [Plain] or [Static _].  A [profile] is
    required when the static parameters request replicas or
    superinstructions.  The returned layout owns a private copy of
    [program].
    @raise Invalid_argument on a dynamic technique or a missing profile. *)

(** Native-code cost constants of the simulated interpreter.

    These calibrate the layout model against the numbers reported in the
    paper: threaded-code dispatch is 3 native instructions (Figure 2: load
    next VM instruction, increment the VM instruction pointer, indirect
    jump), switch dispatch executes considerably more (bounds check, table
    lookup, shared indirect jump, plus the break's jump back), and static
    superinstructions save extra work at every component boundary by keeping
    stack items in registers and combining stack-pointer updates
    (Section 5.3). *)

type t = {
  threaded_dispatch_instrs : int;  (** native instrs of the NEXT sequence *)
  threaded_dispatch_bytes : int;
  switch_dispatch_instrs : int;  (** per-dispatch cost of switch dispatch *)
  switch_dispatch_bytes : int;
  ip_inc_instrs : int;
      (** kept VM-instruction-pointer increment when the rest of the
          dispatch is elided inside a dynamic superinstruction *)
  ip_inc_bytes : int;
  static_super_saving_instrs : int;
      (** native instructions saved per component boundary by compiler
          optimization across the components of a static superinstruction *)
  static_super_saving_bytes : int;
}

val default : t
(** Calibrated for x86: 3-instruction threaded dispatch, 9-instruction
    switch dispatch, 1-instruction kept ip increment, 1 instruction saved
    per static-superinstruction boundary. *)

type t = {
  technique : Technique.t;
  cpu : Vmbp_machine.Cpu_model.t;
  predictor_override : Vmbp_machine.Predictor.kind option;
  costs : Costs.t;
}

let make ?(cpu = Vmbp_machine.Cpu_model.pentium4_northwood) ?predictor
    ?(costs = Costs.default) technique =
  { technique; cpu; predictor_override = predictor; costs }

let predictor_kind t =
  match t.predictor_override with
  | Some kind -> kind
  | None -> t.cpu.Vmbp_machine.Cpu_model.predictor

let build_layout ?profile t ~program =
  match t.technique with
  | Technique.Switch | Technique.Plain | Technique.Static _ ->
      Static_opt.build ?profile ~costs:t.costs ~technique:t.technique ~program
        ()
  | Technique.Dynamic_repl | Technique.Dynamic_super | Technique.Dynamic_both
  | Technique.Across_bb | Technique.With_static_super _
  | Technique.With_static_across_bb _ ->
      Dynamic_opt.build ?profile ~costs:t.costs ~technique:t.technique ~program
        ()
  | Technique.Subroutine -> Subroutine_opt.build ~costs:t.costs ~program ()

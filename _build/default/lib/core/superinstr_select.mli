(** Choosing the static superinstruction set from a training profile
    (Sections 5.1 and 7.1).

    For Gforth the paper selects the most frequently executed sequences from
    a training run; for the JVM it selects statically frequent sequences
    while favouring shorter ones.  Both policies reduce to ranking the
    profile's sequences. *)

type item =
  | Single of int  (** an opcode *)
  | Super of int array  (** a superinstruction's component opcodes *)

val select :
  profile:Vmbp_vm.Profile.t -> params:Technique.static_params -> Super_set.t
(** The top [params.superinstrs] sequences, scored per
    [params.prefer_short]. *)

val replica_weights :
  profile:Vmbp_vm.Profile.t ->
  iset:Vmbp_vm.Instr_set.t ->
  supers:Super_set.t ->
  (item * int) list
(** Frequency weights for apportioning replicas over single instructions
    and the selected superinstructions.  Quickable originals contribute
    their weight to their quick versions, which are the routines actually
    replicated (Section 5.4). *)

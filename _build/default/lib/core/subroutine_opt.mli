(** Subroutine threading (Berndl et al. 2005; the paper's Section 8).

    A minimal JIT: the "VM code" is a sequence of native call instructions,
    one per VM instruction, each calling the shared routine for its opcode.
    Dispatch therefore executes no indirect branch at all -- calls are
    direct and returns are predicted by the hardware return-address stack.
    Only taken VM-level control transfers (branches, VM calls and returns,
    [execute]/[invokevirtual]) still go through the BTB, via an indirect
    jump in the transfer routine.  The price is call/return overhead on
    every VM instruction and the generated call-site code. *)

val build :
  costs:Costs.t -> program:Vmbp_vm.Program.t -> unit -> Code_layout.t
(** The returned layout owns a private copy of [program]. *)

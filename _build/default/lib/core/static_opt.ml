open Vmbp_vm
open Vmbp_machine

(* One simulated executable routine: the native code for one copy of a
   single VM instruction or of a superinstruction. *)
type component = { offset : int; bytes : int; instrs : int }

type routine = {
  addr : int;
  components : component array;
  branch_addr : int;  (* address of the routine's dispatch branch *)
}

type item_key = int
(* Singles are keyed by opcode; superinstructions by [iset size + index]. *)

type builder = {
  iset : Instr_set.t;
  costs : Costs.t;
  alloc : Memory_layout.t;
  technique : Technique.t;
  params : Technique.static_params option;  (* None for Switch/Plain *)
  supers : Super_set.t;
  super_ids : (string, int) Hashtbl.t;  (* sequence key -> item key *)
  copies : (item_key, routine array) Hashtbl.t;
  chooser : Replica_select.chooser;
  switch_branch : int option;  (* the single shared branch, Switch only *)
  dispatch_instrs : int;
  (* Per-basic-block bookkeeping for quickening-driven re-parsing. *)
  mutable bb : Basic_block.t;
  mutable quickable_left : int array;  (* per block id *)
}

let seq_key seq = String.concat "," (List.map string_of_int (Array.to_list seq))

let super_item b seq =
  match Hashtbl.find_opt b.super_ids (seq_key seq) with
  | Some id -> id
  | None -> invalid_arg "Static_opt: unknown superinstruction"

(* Allocate the native code of one routine.  [bodies] lists per-component
   (bytes, instrs) after any cross-component optimization savings. *)
let alloc_routine b ~bodies ~dispatch_bytes =
  let total_body = List.fold_left (fun acc (bytes, _) -> acc + bytes) 0 bodies in
  let addr = Memory_layout.alloc b.alloc ~bytes:(total_body + dispatch_bytes) in
  let components =
    let offset = ref 0 in
    List.map
      (fun (bytes, instrs) ->
        let c = { offset = !offset; bytes; instrs } in
        offset := !offset + bytes;
        c)
      bodies
    |> Array.of_list
  in
  let branch_addr =
    match b.switch_branch with
    | Some shared -> shared
    | None -> addr + total_body
  in
  { addr; components; branch_addr }

let single_bodies b opcode =
  let instr = Instr_set.get b.iset opcode in
  [ (instr.Instr.work_bytes, instr.Instr.work_instrs) ]

(* Component costs of a static superinstruction: the compiler optimizes
   across components, saving work at every component boundary
   (Section 5.3). *)
let super_bodies b seq =
  List.mapi
    (fun i opcode ->
      let instr = Instr_set.get b.iset opcode in
      if i = 0 then (instr.Instr.work_bytes, instr.Instr.work_instrs)
      else
        ( max 1 (instr.Instr.work_bytes - b.costs.Costs.static_super_saving_bytes),
          max 1 (instr.Instr.work_instrs - b.costs.Costs.static_super_saving_instrs)
        ))
    (Array.to_list seq)

let dispatch_bytes b =
  match b.technique with
  | Technique.Switch -> b.costs.Costs.switch_dispatch_bytes
  | _ -> b.costs.Costs.threaded_dispatch_bytes

(* Ensure at least one routine exists for an item and return the copies. *)
let copies_of b item ~bodies =
  match Hashtbl.find_opt b.copies item with
  | Some rs -> rs
  | None ->
      let r = alloc_routine b ~bodies ~dispatch_bytes:(dispatch_bytes b) in
      let rs = [| r |] in
      Hashtbl.replace b.copies item rs;
      rs

let single_copies b opcode = copies_of b opcode ~bodies:(single_bodies b opcode)

let super_copies b seq =
  copies_of b (super_item b seq) ~bodies:(super_bodies b seq)

(* Pre-create the apportioned number of copies for every item. *)
let preallocate_copies b ~profile =
  match b.params with
  | None -> ()
  | Some params when params.Technique.replicas = 0 -> ()
  | Some params ->
      let profile =
        match profile with
        | Some p -> p
        | None -> invalid_arg "Static_opt.build: replicas need a profile"
      in
      let weights =
        Superinstr_select.replica_weights ~profile ~iset:b.iset ~supers:b.supers
        |> List.map (fun (item, w) ->
               match item with
               | Superinstr_select.Single opcode -> ((`S opcode), w)
               | Superinstr_select.Super seq -> ((`X seq), w))
      in
      let allocation =
        Replica_select.apportion ~weights ~budget:params.Technique.replicas
      in
      List.iter
        (fun (tagged, n) ->
          let item, bodies =
            match tagged with
            | `S opcode -> (opcode, single_bodies b opcode)
            | `X seq -> (super_item b seq, super_bodies b seq)
          in
          let rs =
            Array.init n (fun _ ->
                alloc_routine b ~bodies ~dispatch_bytes:(dispatch_bytes b))
          in
          Hashtbl.replace b.copies item rs)
        allocation

(* Whether a slot's current instruction may be a superinstruction
   component: straight-line and not (or no longer) quickable. *)
let eligible (p : Program.t) i =
  let instr = Program.instr_at p i in
  (not instr.Instr.quickable)
  && match instr.Instr.branch with Instr.Straight -> true | _ -> false

let parse_block b (p : Program.t) (blk : Basic_block.block) =
  let opcodes i = p.Program.code.(i).Program.opcode in
  let eligible i = eligible p i in
  let parse =
    match b.params with
    | Some { Technique.parse = Technique.Optimal; _ } -> Block_parse.optimal
    | _ -> Block_parse.greedy
  in
  parse b.supers ~opcodes ~eligible ~start:blk.Basic_block.start
    ~stop:blk.Basic_block.stop

(* Build or rebuild the sites of one basic block from a fresh parse. *)
let assemble_block b (p : Program.t) (sites : Code_layout.site array)
    (blk : Basic_block.block) =
  let groups = parse_block b p blk in
  List.iter
    (fun { Block_parse.start; len } ->
      let routine =
        if len = 1 then begin
          let opcode = p.Program.code.(start).Program.opcode in
          let rs = single_copies b opcode in
          let k =
            if Array.length rs = 1 then 0
            else Replica_select.choose b.chooser ~item:opcode
                   ~copies:(Array.length rs)
          in
          rs.(k)
        end
        else begin
          let seq =
            Array.init len (fun i -> p.Program.code.(start + i).Program.opcode)
          in
          let rs = super_copies b seq in
          let k =
            if Array.length rs = 1 then 0
            else Replica_select.choose b.chooser ~item:(super_item b seq)
                   ~copies:(Array.length rs)
          in
          rs.(k)
        end
      in
      let dispatch =
        Some
          {
            Code_layout.branch_addr = routine.branch_addr;
            instrs = b.dispatch_instrs;
          }
      in
      for i = 0 to len - 1 do
        let c = routine.components.(i) in
        let site = sites.(start + i) in
        site.Code_layout.entry_addr <- routine.addr + c.offset;
        site.Code_layout.fetch_addr <- routine.addr + c.offset;
        site.Code_layout.fetch_bytes <-
          (if i = len - 1 then c.bytes + dispatch_bytes b else c.bytes);
        site.Code_layout.work_instrs <- c.instrs;
        site.Code_layout.pre_dispatch <- None;
        site.Code_layout.fall_extra_instrs <- 0;
        if i = len - 1 then begin
          site.Code_layout.post_fall <- dispatch;
          site.Code_layout.post_taken <- dispatch
        end
        else begin
          site.Code_layout.post_fall <- None;
          site.Code_layout.post_taken <- None
        end
      done)
    groups

let count_quickables (p : Program.t) (bb : Basic_block.t) =
  let counts = Array.make (Array.length bb.Basic_block.blocks) 0 in
  Array.iteri
    (fun i _ ->
      if (Program.instr_at p i).Instr.quickable then begin
        let blk = bb.Basic_block.block_of_slot.(i) in
        counts.(blk) <- counts.(blk) + 1
      end)
    p.Program.code;
  counts

let on_quicken b (layout : Code_layout.t) ~slot =
  let p = layout.Code_layout.program in
  let blk_id = b.bb.Basic_block.block_of_slot.(slot) in
  b.quickable_left.(blk_id) <- b.quickable_left.(blk_id) - 1;
  if b.quickable_left.(blk_id) = 0 && Super_set.size b.supers > 0 then
    (* All quickables of the block are resolved: re-parse so the quick
       instructions can join superinstructions. *)
    assemble_block b p layout.Code_layout.sites
      b.bb.Basic_block.blocks.(blk_id)
  else begin
    (* Point just this slot at a copy of its quick routine. *)
    let opcode = p.Program.code.(slot).Program.opcode in
    let rs = single_copies b opcode in
    let k =
      if Array.length rs = 1 then 0
      else Replica_select.choose b.chooser ~item:opcode ~copies:(Array.length rs)
    in
    let routine = rs.(k) in
    let c = routine.components.(0) in
    let site = layout.Code_layout.sites.(slot) in
    site.Code_layout.entry_addr <- routine.addr;
    site.Code_layout.fetch_addr <- routine.addr;
    site.Code_layout.fetch_bytes <- c.bytes + dispatch_bytes b;
    site.Code_layout.work_instrs <- c.instrs;
    site.Code_layout.pre_dispatch <- None;
    site.Code_layout.fall_extra_instrs <- 0;
    let dispatch =
      Some
        {
          Code_layout.branch_addr = routine.branch_addr;
          instrs = b.dispatch_instrs;
        }
    in
    site.Code_layout.post_fall <- dispatch;
    site.Code_layout.post_taken <- dispatch
  end

let build ?profile ~costs ~technique ~program () =
  let params =
    match technique with
    | Technique.Switch | Technique.Plain -> None
    | Technique.Static params -> Some params
    | Technique.Dynamic_repl | Technique.Dynamic_super | Technique.Dynamic_both
    | Technique.Across_bb | Technique.With_static_super _
    | Technique.With_static_across_bb _ | Technique.Subroutine ->
        invalid_arg "Static_opt.build: dynamic technique"
  in
  let program = Program.copy program in
  let iset = program.Program.iset in
  let alloc = Memory_layout.create () in
  let supers =
    match params with
    | Some ({ Technique.superinstrs; _ } as p) when superinstrs > 0 -> (
        match profile with
        | Some prof -> Superinstr_select.select ~profile:prof ~params:p
        | None -> invalid_arg "Static_opt.build: superinstructions need a profile"
        )
    | _ -> Super_set.empty
  in
  let super_ids = Hashtbl.create 64 in
  List.iteri
    (fun i seq ->
      Hashtbl.replace super_ids (seq_key seq) (Instr_set.size iset + i))
    (Super_set.to_list supers);
  let switch_branch =
    match technique with
    | Technique.Switch -> Some (Memory_layout.alloc alloc ~bytes:costs.Costs.switch_dispatch_bytes)
    | _ -> None
  in
  let dispatch_instrs =
    match technique with
    | Technique.Switch -> costs.Costs.switch_dispatch_instrs
    | _ -> costs.Costs.threaded_dispatch_instrs
  in
  let chooser =
    Replica_select.make_chooser
      (match params with
      | Some p -> p.Technique.strategy
      | None -> Technique.Round_robin)
  in
  let bb = Basic_block.analyze program in
  let b =
    {
      iset;
      costs;
      alloc;
      technique;
      params;
      supers;
      super_ids;
      copies = Hashtbl.create 256;
      chooser;
      switch_branch;
      dispatch_instrs;
      bb;
      quickable_left = [||];
    }
  in
  b.quickable_left <- count_quickables program bb;
  preallocate_copies b ~profile;
  let n = Program.length program in
  let sites =
    Array.init n (fun _ -> Code_layout.make_site ~entry:0 ~fetch:0 ~bytes:0 ~instrs:0)
  in
  Array.iter (assemble_block b program sites) bb.Basic_block.blocks;
  let layout =
    {
      Code_layout.program;
      technique;
      costs;
      sites;
      shadow = sites;
      shadow_until = Array.make n (-1);
      runtime_code_bytes = 0;
      on_quicken = (fun _ ~slot:_ -> ());
    }
  in
  layout.Code_layout.on_quicken <- (fun l ~slot -> on_quicken b l ~slot);
  layout

(** Apportioning replicas over instructions and choosing a copy per code
    site (Section 5.1).

    Two concerns live here: deciding how many copies each (super)instruction
    receives out of a fixed budget of additional routines, and picking a
    concrete copy for each static occurrence.  The paper found round-robin
    (statically least-recently-used) selection better than random because of
    spatial locality in the code. *)

type chooser

val make_chooser : Technique.replica_strategy -> chooser

val choose : chooser -> item:int -> copies:int -> int
(** Pick a copy index in [0, copies) for the next static occurrence of
    [item] (an arbitrary caller-chosen key: an opcode, or a superinstruction
    id offset past the opcodes).  Round-robin counts per item; random draws
    from the seeded generator. *)

val apportion : weights:('a * int) list -> budget:int -> ('a * int) list
(** [apportion ~weights ~budget] distributes [budget] additional copies
    over the items, proportionally to their weights, one copy at a time to
    the item with the largest weight-per-copy (highest-averages
    apportionment).  Returns [(item, total_copies)] with
    [total_copies >= 1] for every item present in [weights]; items with
    zero weight keep exactly one copy. *)

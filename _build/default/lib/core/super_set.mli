(** A set of superinstruction opcode sequences, with fast longest-match
    lookup for the basic-block parsers. *)

type t

val empty : t
val of_list : int array list -> t
(** Duplicate sequences and sequences shorter than 2 are dropped. *)

val size : t -> int
val max_len : t -> int
val mem : t -> int array -> bool
val to_list : t -> int array list

val match_lengths : t -> opcodes:(int -> int) -> pos:int -> limit:int ->
  int list
(** All lengths [l >= 2] such that the sequence
    [opcodes pos, ..., opcodes (pos+l-1)] is in the set and
    [pos + l - 1 <= limit]; longest first. *)

open Vmbp_vm

type dispatch = { branch_addr : int; instrs : int }

type site = {
  mutable entry_addr : int;
  mutable fetch_addr : int;
  mutable fetch_bytes : int;
  mutable work_instrs : int;
  mutable pre_dispatch : dispatch option;
  mutable post_fall : dispatch option;
  mutable post_taken : dispatch option;
  mutable fall_extra_instrs : int;
  mutable call_fetch_addr : int;
  mutable call_fetch_bytes : int;
}

type t = {
  program : Program.t;
  technique : Technique.t;
  costs : Costs.t;
  sites : site array;
  shadow : site array;
  shadow_until : int array;
  mutable runtime_code_bytes : int;
  mutable on_quicken : t -> slot:int -> unit;
}

let make_site ~entry ~fetch ~bytes ~instrs =
  {
    entry_addr = entry;
    fetch_addr = fetch;
    fetch_bytes = bytes;
    work_instrs = instrs;
    pre_dispatch = None;
    post_fall = None;
    post_taken = None;
    fall_extra_instrs = 0;
    call_fetch_addr = 0;
    call_fetch_bytes = 0;
  }

let copy_site_into ~src ~dst =
  dst.entry_addr <- src.entry_addr;
  dst.fetch_addr <- src.fetch_addr;
  dst.fetch_bytes <- src.fetch_bytes;
  dst.work_instrs <- src.work_instrs;
  dst.pre_dispatch <- src.pre_dispatch;
  dst.post_fall <- src.post_fall;
  dst.post_taken <- src.post_taken;
  dst.fall_extra_instrs <- src.fall_extra_instrs;
  dst.call_fetch_addr <- src.call_fetch_addr;
  dst.call_fetch_bytes <- src.call_fetch_bytes

let quicken t ~slot ~new_opcode ~new_operands =
  let s = t.program.Program.code.(slot) in
  s.Program.opcode <- new_opcode;
  s.Program.operands <- new_operands;
  t.on_quicken t ~slot

let total_dispatch_sites t =
  Array.fold_left
    (fun acc site -> if site.post_fall <> None then acc + 1 else acc)
    0 t.sites

type group = { start : int; len : int }

let greedy set ~opcodes ~eligible ~start ~stop =
  (* A superinstruction may not extend past the first ineligible slot. *)
  let eligible_limit pos =
    let rec loop i = if i > stop || not (eligible i) then i - 1 else loop (i + 1) in
    loop pos
  in
  let rec loop pos acc =
    if pos > stop then List.rev acc
    else if not (eligible pos) then
      loop (pos + 1) ({ start = pos; len = 1 } :: acc)
    else
      let limit = eligible_limit pos in
      match Super_set.match_lengths set ~opcodes ~pos ~limit with
      | longest :: _ -> loop (pos + longest) ({ start = pos; len = longest } :: acc)
      | [] -> loop (pos + 1) ({ start = pos; len = 1 } :: acc)
  in
  loop start []

let optimal set ~opcodes ~eligible ~start ~stop =
  let n = stop - start + 1 in
  if n <= 0 then []
  else begin
    (* best.(i) = minimal group count for slots [start+i .. stop];
       step.(i) = length of the first group in an optimal split. *)
    let best = Array.make (n + 1) 0 in
    let step = Array.make n 1 in
    let eligible_limit pos =
      let rec loop i = if i > stop || not (eligible i) then i - 1 else loop (i + 1) in
      loop pos
    in
    for i = n - 1 downto 0 do
      let pos = start + i in
      best.(i) <- 1 + best.(i + 1);
      step.(i) <- 1;
      if eligible pos then begin
        let limit = eligible_limit pos in
        List.iter
          (fun l ->
            (* Longest-first iteration plus strict improvement test breaks
               ties towards longer first groups. *)
            if 1 + best.(i + l) < best.(i) then begin
              best.(i) <- 1 + best.(i + l);
              step.(i) <- l
            end)
          (Super_set.match_lengths set ~opcodes ~pos ~limit)
      end
    done;
    let rec rebuild i acc =
      if i >= n then List.rev acc
      else rebuild (i + step.(i)) ({ start = start + i; len = step.(i) } :: acc)
    in
    rebuild 0 []
  end

let group_count groups = List.length groups

let pp ppf groups =
  List.iter
    (fun g ->
      if g.len = 1 then Format.fprintf ppf "[%d]" g.start
      else Format.fprintf ppf "[%d..%d]" g.start (g.start + g.len - 1))
    groups

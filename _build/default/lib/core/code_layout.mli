(** The executable-code model of one interpreter configuration.

    A layout assigns every VM code slot an execution {e site}: which
    simulated native code runs for it (address and size, for the I-cache),
    how many native instructions that code retires, and which dispatch
    indirect branches execute around it (for the branch predictor).  The
    static and dynamic optimizers each build layouts; the engine only reads
    them.

    Address identity is what makes the BTB behave as in the paper: with
    plain threaded code all occurrences of a VM instruction share one
    dispatch branch address, with replication each copy has its own, with
    switch dispatch every slot shares the single switch branch. *)

type dispatch = {
  branch_addr : int;  (** address of the dispatch indirect branch *)
  instrs : int;  (** native instructions of the dispatch sequence *)
}

type site = {
  mutable entry_addr : int;
      (** the address stored in the threaded code: what predecessors'
          dispatch branches jump to *)
  mutable fetch_addr : int;  (** start of the code executed for the slot *)
  mutable fetch_bytes : int;  (** bytes fetched when the slot executes *)
  mutable work_instrs : int;  (** retired native instructions of the work *)
  mutable pre_dispatch : dispatch option;
      (** a dispatch executed on entry, before the work: the gap dispatch of
          a not-yet-quickened instruction inside a dynamic superinstruction
          (Section 5.4) *)
  mutable post_fall : dispatch option;
      (** dispatch executed when control falls through to the next slot;
          [None] inside a superinstruction *)
  mutable post_taken : dispatch option;
      (** dispatch executed when control leaves via a taken VM branch,
          call or return *)
  mutable fall_extra_instrs : int;
      (** native instructions still executed on the fall-through path when
          the dispatch is elided (the kept ip increment, Section 5.2) *)
  mutable call_fetch_addr : int;
      (** subroutine threading only: address of the native call instruction
          the tiny JIT emitted for this slot *)
  mutable call_fetch_bytes : int;  (** 0 everywhere else *)
}

type t = {
  program : Vmbp_vm.Program.t;  (** the live program; quickening mutates it *)
  technique : Technique.t;
  costs : Costs.t;
  sites : site array;  (** indexed by slot *)
  shadow : site array;
      (** non-replicated fallback sites; physically equal to [sites] except
          for [With_static_across_bb] *)
  shadow_until : int array;
      (** [shadow_until.(j) >= 0] means a taken branch entering slot [j]
          lands in the middle of a replicated static superinstruction and
          must execute non-replicated code up to and including that slot
          (Figure 6); [-1] everywhere else *)
  mutable runtime_code_bytes : int;
      (** code generated at interpreter run time by the dynamic methods *)
  mutable on_quicken : t -> slot:int -> unit;
      (** technique-specific layout repair after a slot is rewritten *)
}

val make_site :
  entry:int -> fetch:int -> bytes:int -> instrs:int -> site
(** A site with no dispatches and no extra fall-through cost. *)

val copy_site_into : src:site -> dst:site -> unit

val quicken :
  t -> slot:int -> new_opcode:int -> new_operands:int array -> unit
(** Install the quick instruction into the program slot and let the
    technique repair the affected sites. *)

val total_dispatch_sites : t -> int
(** Number of slots whose fall-through path still dispatches; a measure of
    how many dispatches the technique eliminated statically. *)

(** Unified registry of the benchmark programs of both VMs, with the
    training-profile policies the paper uses for static selection
    (Section 7.1): Gforth trains on a dynamic profile of [brainless]; the
    JVM selects per benchmark from static profiles of the other six
    programs, taken after quickening. *)

type vm = Forth | Jvm

val vm_name : vm -> string

type session = {
  exec : Vmbp_core.Engine.exec;  (** semantics bound to a fresh state *)
  output : unit -> string;  (** captured program output *)
}

type loaded = {
  program : Vmbp_vm.Program.t;
      (** pristine, unquickened program; layout builders copy it *)
  fresh_session : unit -> session;
}

type t = {
  vm : vm;
  name : string;
  description : string;
  load : scale:int -> loaded;
}

val all : t list
val forth : t list
(** In the paper's Table VI order. *)

val jvm : t list
(** In the paper's Figure 9 order. *)

val find : vm:vm -> string -> t option

val run_reference :
  ?fuel:int -> loaded -> int * string option * string
(** Functional run on a copy: (steps, trap, output). *)

val quickened_program : ?fuel:int -> loaded -> Vmbp_vm.Program.t
(** A copy of the program after running it to completion functionally, so
    all reachable quickable instructions are in their quick form. *)

val training_profile :
  ?max_seq_len:int -> vm:vm -> target:string -> scale:int -> unit ->
  Vmbp_vm.Profile.t
(** The profile used to select static replicas/superinstructions when
    optimizing [target]: for Forth, a dynamic profile from a training run
    of [brainless] (halved scale); for the JVM, static profiles of every
    quickened benchmark except [target]. *)

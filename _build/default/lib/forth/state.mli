(** Run-time state of the Forth virtual machine: data stack, return stack,
    cell-addressed memory and an output buffer.

    The return stack holds both return addresses (VM slot indices pushed by
    calls) and user values ([>r] and the do-loop parameters), exactly as in
    a traditional Forth. *)

exception Trap of string
(** Raised by stack/memory violations; the semantics layer converts it into
    {!Vmbp_vm.Control.Trap}. *)

type t = {
  stack : int array;
  mutable sp : int;  (** next free data-stack cell *)
  rstack : int array;
  mutable rsp : int;
  memory : int array;  (** cell-addressed data space *)
  mutable here : int;  (** data-space allocation pointer *)
  out : Buffer.t;  (** captured output of [emit], [.] and friends *)
}

val create : ?stack_cells:int -> ?rstack_cells:int -> ?memory_cells:int ->
  unit -> t

val push : t -> int -> unit
val pop : t -> int
val peek : t -> int
(** Top of the data stack without popping. *)

val pick : t -> int -> int
(** [pick st n] is the [n]-th stack cell from the top, [pick st 0 = peek]. *)

val rpush : t -> int -> unit
val rpop : t -> int
val rpeek : t -> int -> int
(** [rpeek st n] reads the [n]-th return-stack cell from the top. *)

val load : t -> int -> int
(** Cell read with bounds check. *)

val store : t -> int -> int -> unit
(** [store st addr v] writes cell [addr]. *)

val allot : t -> int -> int
(** Reserve [n] cells of data space, returning the first address. *)

val output : t -> string
(** Everything printed so far. *)

val depth : t -> int
(** Data stack depth. *)

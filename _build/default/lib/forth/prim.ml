open Vmbp_vm

type t = {
  name : string;
  work_instrs : int;
  work_bytes : int;
  relocatable : bool;
  branch : Instr.branch_kind;
  operand_count : int;
  run : State.t -> Program.t -> int -> int array -> Control.t;
}

let next = Control.Next

(* Helpers for the common primitive shapes. *)
let simple ?(work = 3) ?(reloc = true) name f =
  {
    name;
    work_instrs = work;
    work_bytes = work * 3;
    relocatable = reloc;
    branch = Instr.Straight;
    operand_count = 0;
    run = (fun st _p _pc _ops -> f st; next);
  }

let unop ?(work = 3) name f =
  simple ~work name (fun st -> State.push st (f (State.pop st)))

let binop ?(work = 3) name f =
  simple ~work name (fun st ->
      let b = State.pop st in
      let a = State.pop st in
      State.push st (f a b))

let cmp name f = binop ~work:5 name (fun a b -> if f a b then -1 else 0)

let div_guard name f =
  binop ~work:6 name (fun a b ->
      if b = 0 then raise (State.Trap (name ^ ": division by zero")) else f a b)

let all =
  [
    (* --- literals and memory ------------------------------------- *)
    {
      name = "lit";
      work_instrs = 3;
      work_bytes = 9;
      relocatable = true;
      branch = Instr.Straight;
      operand_count = 1;
      run = (fun st _p _pc ops -> State.push st ops.(0); next);
    };
    simple ~work:3 "@" (fun st -> State.push st (State.load st (State.pop st)));
    simple ~work:4 "!" (fun st ->
        let addr = State.pop st in
        let v = State.pop st in
        State.store st addr v);
    simple ~work:5 "+!" (fun st ->
        let addr = State.pop st in
        let v = State.pop st in
        State.store st addr (State.load st addr + v));
    simple ~work:4 "allot" (fun st ->
        let n = State.pop st in
        ignore (State.allot st n));
    simple ~work:3 "here" (fun st -> State.push st st.State.here);
    (* --- data stack ----------------------------------------------- *)
    simple ~work:3 "dup" (fun st -> State.push st (State.peek st));
    simple ~work:2 "drop" (fun st -> ignore (State.pop st));
    simple ~work:4 "swap" (fun st ->
        let b = State.pop st in
        let a = State.pop st in
        State.push st b;
        State.push st a);
    simple ~work:4 "over" (fun st -> State.push st (State.pick st 1));
    simple ~work:5 "rot" (fun st ->
        let c = State.pop st in
        let b = State.pop st in
        let a = State.pop st in
        State.push st b;
        State.push st c;
        State.push st a);
    simple ~work:5 "-rot" (fun st ->
        let c = State.pop st in
        let b = State.pop st in
        let a = State.pop st in
        State.push st c;
        State.push st a;
        State.push st b);
    simple ~work:4 "nip" (fun st ->
        let b = State.pop st in
        ignore (State.pop st);
        State.push st b);
    simple ~work:5 "tuck" (fun st ->
        let b = State.pop st in
        let a = State.pop st in
        State.push st b;
        State.push st a;
        State.push st b);
    simple ~work:5 "pick" (fun st ->
        let n = State.pop st in
        State.push st (State.pick st n));
    simple ~work:4 "2dup" (fun st ->
        let b = State.pick st 0 in
        let a = State.pick st 1 in
        State.push st a;
        State.push st b);
    simple ~work:3 "2drop" (fun st ->
        ignore (State.pop st);
        ignore (State.pop st));
    simple ~work:4 "?dup" (fun st ->
        let v = State.peek st in
        if v <> 0 then State.push st v);
    simple ~work:3 "depth" (fun st -> State.push st (State.depth st));
    (* --- return stack --------------------------------------------- *)
    simple ~work:3 ">r" (fun st -> State.rpush st (State.pop st));
    simple ~work:3 "r>" (fun st -> State.push st (State.rpop st));
    simple ~work:3 "r@" (fun st -> State.push st (State.rpeek st 0));
    (* --- arithmetic ------------------------------------------------ *)
    binop "+" ( + );
    binop "-" ( - );
    binop ~work:4 "*" ( * );
    div_guard "/" ( / );
    div_guard "mod" (fun a b -> ((a mod b) + b) mod b);
    unop "1+" (fun a -> a + 1);
    unop "1-" (fun a -> a - 1);
    unop "2*" (fun a -> a * 2);
    unop "2/" (fun a -> a asr 1);
    unop "negate" (fun a -> -a);
    unop ~work:4 "abs" abs;
    binop ~work:5 "min" min;
    binop ~work:5 "max" max;
    (* --- logic ------------------------------------------------------ *)
    binop "and" ( land );
    binop "or" ( lor );
    binop "xor" ( lxor );
    unop "invert" lnot;
    binop ~work:4 "lshift" (fun a b -> a lsl b);
    binop ~work:4 "rshift" (fun a b -> a lsr b);
    (* --- comparison ------------------------------------------------- *)
    cmp "=" ( = );
    cmp "<>" ( <> );
    cmp "<" ( < );
    cmp ">" ( > );
    cmp "<=" ( <= );
    cmp ">=" ( >= );
    unop ~work:4 "0=" (fun a -> if a = 0 then -1 else 0);
    unop ~work:4 "0<" (fun a -> if a < 0 then -1 else 0);
    unop ~work:4 "0>" (fun a -> if a > 0 then -1 else 0);
    (* --- control flow ----------------------------------------------- *)
    {
      name = "branch";
      work_instrs = 3;
      work_bytes = 9;
      relocatable = true;
      branch = Instr.Uncond_branch 0;
      operand_count = 1;
      run = (fun _st _p _pc ops -> Control.Jump ops.(0));
    };
    {
      name = "?branch";
      work_instrs = 5;
      work_bytes = 15;
      relocatable = true;
      branch = Instr.Cond_branch 0;
      operand_count = 1;
      run =
        (fun st _p _pc ops ->
          if State.pop st = 0 then Control.Jump ops.(0) else next);
    };
    {
      name = "call";
      work_instrs = 5;
      work_bytes = 15;
      relocatable = true;
      branch = Instr.Call 0;
      operand_count = 1;
      run =
        (fun st _p pc ops ->
          State.rpush st (pc + 1);
          Control.Jump ops.(0));
    };
    {
      name = "exit";
      work_instrs = 4;
      work_bytes = 12;
      relocatable = true;
      branch = Instr.Return;
      operand_count = 0;
      run = (fun st _p _pc _ops -> Control.Jump (State.rpop st));
    };
    {
      name = "execute";
      work_instrs = 6;
      work_bytes = 18;
      relocatable = false;
      branch = Instr.Indirect_call;
      operand_count = 0;
      run =
        (fun st _p pc _ops ->
          let xt = State.pop st in
          State.rpush st (pc + 1);
          Control.Jump xt);
    };
    {
      name = "halt";
      work_instrs = 1;
      work_bytes = 3;
      relocatable = true;
      branch = Instr.Stop;
      operand_count = 0;
      run = (fun _st _p _pc _ops -> Control.Halt);
    };
    (* --- counted loops ---------------------------------------------- *)
    simple ~work:5 "(do)" (fun st ->
        let start = State.pop st in
        let limit = State.pop st in
        State.rpush st limit;
        State.rpush st start);
    {
      name = "(loop)";
      work_instrs = 6;
      work_bytes = 18;
      relocatable = true;
      branch = Instr.Cond_branch 0;
      operand_count = 1;
      run =
        (fun st _p _pc ops ->
          let index = State.rpop st + 1 in
          let limit = State.rpeek st 0 in
          if index < limit then begin
            State.rpush st index;
            Control.Jump ops.(0)
          end
          else begin
            ignore (State.rpop st);
            next
          end);
    };
    {
      name = "(+loop)";
      work_instrs = 7;
      work_bytes = 21;
      relocatable = true;
      branch = Instr.Cond_branch 0;
      operand_count = 1;
      run =
        (fun st _p _pc ops ->
          let step = State.pop st in
          let index = State.rpop st + step in
          let limit = State.rpeek st 0 in
          let continue = if step >= 0 then index < limit else index > limit in
          if continue then begin
            State.rpush st index;
            Control.Jump ops.(0)
          end
          else begin
            ignore (State.rpop st);
            next
          end);
    };
    simple ~work:3 "i" (fun st -> State.push st (State.rpeek st 0));
    simple ~work:4 "j" (fun st -> State.push st (State.rpeek st 2));
    simple ~work:3 "unloop" (fun st ->
        ignore (State.rpop st);
        ignore (State.rpop st));
    (* --- output (non-relocatable: library calls) --------------------- *)
    simple ~work:12 ~reloc:false "emit" (fun st ->
        Buffer.add_char st.State.out (Char.chr (State.pop st land 0xff)));
    simple ~work:14 ~reloc:false "." (fun st ->
        Buffer.add_string st.State.out (string_of_int (State.pop st));
        Buffer.add_char st.State.out ' ');
    simple ~work:10 ~reloc:false "cr" (fun st ->
        Buffer.add_char st.State.out '\n');
    simple ~work:16 ~reloc:false "type" (fun st ->
        let len = State.pop st in
        let addr = State.pop st in
        for k = 0 to len - 1 do
          Buffer.add_char st.State.out
            (Char.chr (State.load st (addr + k) land 0xff))
        done);
    simple ~work:2 "noop" (fun _st -> ());
  ]

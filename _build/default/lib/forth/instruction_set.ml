open Vmbp_vm

let iset = Instr_set.create ~name:"forth"

let runners : (State.t -> Program.t -> int -> int array -> Control.t) array =
  let table = Array.of_list Prim.all in
  Array.iter
    (fun (p : Prim.t) ->
      let opcode =
        Instr_set.register iset ~name:p.Prim.name
          ~work_instrs:p.Prim.work_instrs ~work_bytes:p.Prim.work_bytes
          ~relocatable:p.Prim.relocatable ~branch:p.Prim.branch
          ~operand_count:p.Prim.operand_count ()
      in
      (* Registration order defines opcodes 0..n-1; keep them aligned. *)
      assert (opcode >= 0))
    table;
  Array.map (fun (p : Prim.t) -> p.Prim.run) table

let opcode name = Instr_set.find_exn iset name

let exec state : Vmbp_core.Engine.exec =
 fun program pc ->
  let slot = program.Program.code.(pc) in
  try runners.(slot.Program.opcode) state program pc slot.Program.operands
  with State.Trap msg -> Control.Trap msg

open Vmbp_vm

exception Error of string

type unit_ = { program : Program.t; words : (string * int) list }

let error fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

(* ---------------------------------------------------------------- *)
(* Lexer: whitespace-separated tokens, line comments with [\ ], inline
   comments with [( ... )], and the [." ..."] string form which must keep
   its spaces. *)

type token = Word of string | Str of string  (* payload of ." ... " *)

let tokenize source =
  let tokens = ref [] in
  let lines = String.split_on_char '\n' source in
  List.iter
    (fun line ->
      let n = String.length line in
      let i = ref 0 in
      let in_paren = ref false in
      while !i < n do
        (* skip whitespace *)
        while !i < n && (line.[!i] = ' ' || line.[!i] = '\t' || line.[!i] = '\r')
        do
          incr i
        done;
        if !i < n then begin
          let start = !i in
          while
            !i < n && line.[!i] <> ' ' && line.[!i] <> '\t' && line.[!i] <> '\r'
          do
            incr i
          done;
          let tok = String.sub line start (!i - start) in
          if !in_paren then begin
            if String.contains tok ')' then in_paren := false
          end
          else
            match tok with
            | "\\" -> i := n  (* rest of line is a comment *)
            | "(" -> in_paren := true
            | ".\"" ->
                (* Read the raw text up to the closing quote. *)
                let rec find_quote j =
                  if j >= n then error "unterminated .\""
                  else if line.[j] = '"' then j
                  else find_quote (j + 1)
                in
                (* [!i] sits on the separating space after the dot-quote
                   token; the string payload starts one character later. *)
                let stop = find_quote !i in
                let text =
                  if stop > !i + 1 then String.sub line (!i + 1) (stop - !i - 1)
                  else ""
                in
                tokens := Str text :: !tokens;
                i := stop + 1
            | _ -> tokens := Word tok :: !tokens
        end
      done;
      if !in_paren then () (* parenthesised comments may not span lines *))
    lines;
  List.rev !tokens

(* ---------------------------------------------------------------- *)
(* Compiler state *)

type dict_entry =
  | Colon of int  (* entry slot *)
  | Constant of int
  | Address of int  (* data-space address of a variable or array *)

type t = {
  iset : Instr_set.t;
  mutable code : Program.slot array;
  mutable len : int;
  dict : (string, dict_entry) Hashtbl.t;
  mutable dp : int;  (* compile-time data-space pointer *)
  mutable word_list : (string * int) list;
}

(* Compile-time control-flow stack entries. *)
type do_frame = { start : int; mutable leaves : int list }
type case_frame = { mutable exits : int list }

type cf =
  | CF_if of int
  | CF_else of int
  | CF_begin of int
  | CF_while of { begin_ : int; exit_slot : int }
  | CF_do of do_frame
  | CF_case of case_frame
  | CF_of of { pending : int; frame : case_frame }

let create () =
  {
    iset = Instruction_set.iset;
    code = Array.make 256 { Program.opcode = 0; operands = [||] };
    len = 0;
    dict = Hashtbl.create 64;
    dp = 16;  (* must match State.create's initial [here] *)
    word_list = [];
  }

let emit c opcode operands =
  if c.len >= Array.length c.code then begin
    let bigger =
      Array.make (2 * Array.length c.code)
        { Program.opcode = 0; operands = [||] }
    in
    Array.blit c.code 0 bigger 0 c.len;
    c.code <- bigger
  end;
  c.code.(c.len) <- { Program.opcode; operands };
  c.len <- c.len + 1;
  c.len - 1

let patch c slot target =
  let s = c.code.(slot) in
  s.Program.operands <- Array.map (fun v -> if v = -1 then target else v)
      s.Program.operands

let op c name = Instr_set.find_exn c.iset name
let emit_lit c v = ignore (emit c (op c "lit") [| v |])

let is_number tok =
  match int_of_string_opt tok with Some _ -> true | None -> false

(* ---------------------------------------------------------------- *)
(* Token-stream compilation *)

let rec compile_tokens c ~in_def ~entry tokens cf_stack =
  match tokens with
  | [] ->
      if cf_stack <> [] then error "unterminated control structure";
      if in_def then error "unterminated colon definition";
      []
  | Str text :: rest ->
      (* ." ... " -- print each character *)
      String.iter
        (fun ch ->
          emit_lit c (Char.code ch);
          ignore (emit c (op c "emit") [||]))
        text;
      compile_tokens c ~in_def ~entry rest cf_stack
  | Word tok :: rest -> (
      let continue rest cf = compile_tokens c ~in_def ~entry rest cf in
      match tok with
      | ";" ->
          if not in_def then error "; outside a definition";
          if cf_stack <> [] then error "unterminated control structure in word";
          ignore (emit c (op c "exit") [||]);
          rest
      | ":" -> error "nested colon definition"
      | "if" ->
          let slot = emit c (op c "?branch") [| -1 |] in
          continue rest (CF_if slot :: cf_stack)
      | "else" -> (
          match cf_stack with
          | CF_if slot :: up ->
              let jump = emit c (op c "branch") [| -1 |] in
              patch c slot c.len;
              continue rest (CF_else jump :: up)
          | _ -> error "else without if")
      | "then" -> (
          match cf_stack with
          | (CF_if slot | CF_else slot) :: up ->
              patch c slot c.len;
              continue rest up
          | _ -> error "then without if")
      | "begin" -> continue rest (CF_begin c.len :: cf_stack)
      | "until" -> (
          match cf_stack with
          | CF_begin target :: up ->
              ignore (emit c (op c "?branch") [| target |]);
              continue rest up
          | _ -> error "until without begin")
      | "again" -> (
          match cf_stack with
          | CF_begin target :: up ->
              ignore (emit c (op c "branch") [| target |]);
              continue rest up
          | _ -> error "again without begin")
      | "while" -> (
          match cf_stack with
          | CF_begin begin_ :: up ->
              let exit_slot = emit c (op c "?branch") [| -1 |] in
              continue rest (CF_while { begin_; exit_slot } :: up)
          | _ -> error "while without begin")
      | "repeat" -> (
          match cf_stack with
          | CF_while { begin_; exit_slot } :: up ->
              ignore (emit c (op c "branch") [| begin_ |]);
              patch c exit_slot c.len;
              continue rest up
          | _ -> error "repeat without while")
      | "do" ->
          ignore (emit c (op c "(do)") [||]);
          continue rest (CF_do { start = c.len; leaves = [] } :: cf_stack)
      | "loop" | "+loop" -> (
          match cf_stack with
          | CF_do { start; leaves } :: up ->
              let prim = if tok = "loop" then "(loop)" else "(+loop)" in
              ignore (emit c (op c prim) [| start |]);
              List.iter (fun slot -> patch c slot c.len) leaves;
              continue rest up
          | _ -> error "%s without do" tok)
      | "leave" -> (
          (* Find the innermost do and register a forward branch. *)
          let rec find = function
            | [] -> error "leave outside a do loop"
            | CF_do frame :: _ -> frame
            | _ :: up -> find up
          in
          let frame = find cf_stack in
          ignore (emit c (op c "unloop") [||]);
          let slot = emit c (op c "branch") [| -1 |] in
          frame.leaves <- slot :: frame.leaves;
          continue rest cf_stack)
      | "case" -> continue rest (CF_case { exits = [] } :: cf_stack)
      | "of" -> (
          (* runtime: ( sel x -- sel ) on no match, ( ) on match *)
          match cf_stack with
          | CF_case frame :: up ->
              ignore (emit c (op c "over") [||]);
              ignore (emit c (op c "=") [||]);
              let pending = emit c (op c "?branch") [| -1 |] in
              ignore (emit c (op c "drop") [||]);
              continue rest (CF_of { pending; frame } :: up)
          | _ -> error "of outside a case")
      | "endof" -> (
          match cf_stack with
          | CF_of { pending; frame } :: up ->
              frame.exits <- emit c (op c "branch") [| -1 |] :: frame.exits;
              patch c pending c.len;
              continue rest (CF_case frame :: up)
          | _ -> error "endof without of")
      | "endcase" -> (
          match cf_stack with
          | CF_case frame :: up ->
              (* drop the unmatched selector on the default path *)
              ignore (emit c (op c "drop") [||]);
              List.iter (fun slot -> patch c slot c.len) frame.exits;
              continue rest up
          | _ -> error "endcase without case")
      | "recurse" ->
          (match entry with
          | Some e -> ignore (emit c (op c "call") [| e |])
          | None -> error "recurse outside a definition");
          continue rest cf_stack
      | "'" -> (
          match rest with
          | Word name :: rest' -> (
              match Hashtbl.find_opt c.dict name with
              | Some (Colon e) ->
                  emit_lit c e;
                  continue rest' cf_stack
              | Some _ -> error "' expects a colon definition: %s" name
              | None -> error "' of unknown word %s" name)
          | _ -> error "' at end of input")
      | "char" -> (
          match rest with
          | Word s :: rest' when String.length s >= 1 ->
              emit_lit c (Char.code s.[0]);
              continue rest' cf_stack
          | _ -> error "char expects a character")
      | _ when is_number tok ->
          emit_lit c (int_of_string tok);
          continue rest cf_stack
      | _ -> (
          match Hashtbl.find_opt c.dict tok with
          | Some (Colon e) ->
              ignore (emit c (op c "call") [| e |]);
              continue rest cf_stack
          | Some (Constant v) ->
              emit_lit c v;
              continue rest cf_stack
          | Some (Address a) ->
              emit_lit c a;
              continue rest cf_stack
          | None -> (
              match Instr_set.find c.iset tok with
              | Some opcode ->
                  let instr = Instr_set.get c.iset opcode in
                  if instr.Instr.operand_count > 0 then
                    error "%s cannot be used directly" tok
                  else begin
                    ignore (emit c opcode [||]);
                    continue rest cf_stack
                  end
              | None -> error "unknown word: %s" tok)))

(* Scan the top level: definitions compile immediately, defining words
   update the dictionary, everything else is deferred into [main]. *)
let rec scan_top c tokens main_rev =
  match tokens with
  | [] -> List.rev main_rev
  | Word ":" :: Word name :: rest ->
      let entry = c.len in
      Hashtbl.replace c.dict name (Colon entry);
      c.word_list <- (name, entry) :: c.word_list;
      let rest = compile_tokens c ~in_def:true ~entry:(Some entry) rest [] in
      scan_top c rest main_rev
  | Word ":" :: _ -> error ": at end of input"
  | Word "variable" :: Word name :: rest ->
      Hashtbl.replace c.dict name (Address c.dp);
      c.dp <- c.dp + 1;
      scan_top c rest main_rev
  | Word "constant" :: Word name :: rest -> (
      (* [value constant name]: the value is the previous main token. *)
      match main_rev with
      | Word v :: main' when is_number v ->
          Hashtbl.replace c.dict name (Constant (int_of_string v));
          scan_top c rest main'
      | _ -> error "constant %s: needs a literal value before it" name)
  | Word "array" :: Word name :: Word size :: rest when is_number size ->
      Hashtbl.replace c.dict name (Address c.dp);
      c.dp <- c.dp + int_of_string size;
      scan_top c rest main_rev
  | Word "array" :: _ -> error "array needs a name and a literal size"
  | tok :: rest -> scan_top c rest (tok :: main_rev)

let compile_unit ~name source =
  let c = create () in
  let tokens = tokenize source in
  let main_tokens = scan_top c tokens [] in
  let main_entry = c.len in
  (* Prologue: advance the runtime allocation pointer past the cells the
     compiler handed out to variables and arrays. *)
  if c.dp > 16 then begin
    emit_lit c (c.dp - 16);
    ignore (emit c (op c "allot") [||])
  end;
  let rest = compile_tokens c ~in_def:false ~entry:None main_tokens [] in
  (match rest with [] -> () | _ -> error "trailing tokens after main");
  ignore (emit c (op c "halt") [||]);
  let code = Array.sub c.code 0 c.len in
  let entries = List.map snd c.word_list in
  let program =
    Program.make ~name ~iset:c.iset ~code ~entry:main_entry ~entries ()
  in
  { program; words = c.word_list }

let compile ~name source = (compile_unit ~name source).program

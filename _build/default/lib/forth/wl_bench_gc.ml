(* bench-gc: garbage-collector workload (paper Table VI).

   A cons-cell heap with a free list and a mark-sweep collector; the
   mutator builds and drops random lists through a root set, so collections
   trigger naturally from allocation pressure. *)

let name = "bench-gc"
let description = "mark-sweep garbage collector over a cons-cell heap"

let source ~scale =
  let b = Buffer.create 8192 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf
    {|
\ ---- bench-gc: mark-sweep collector ------------------------------
2000 constant heap#
8 constant roots#
array car# 2000
array cdr# 2000
array mark# 2000
array root# 8
variable tmp-root         \ roots the list being built, so a collection
                          \ triggered mid-construction cannot reclaim it
variable freelist
variable gc-count
variable live-count

: init-heap ( -- )
  heap# 0 do i 1+ i cdr# + ! loop
  -1 heap# 1- cdr# + !
  0 freelist !
  0 gc-count !
  -1 tmp-root !
  roots# 0 do -1 i root# + ! loop ;

: mark-list ( cell -- )
  begin dup -1 <> while
    dup mark# + @ if drop -1 else
      1 over mark# + !
      cdr# + @
    then
  repeat drop ;

: sweep ( -- )
  -1 freelist !
  0 live-count !
  heap# 0 do
    i mark# + @ if
      0 i mark# + !  1 live-count +!
    else
      freelist @ i cdr# + !  i freelist !
    then
  loop ;

: gc ( -- )
  1 gc-count +!
  roots# 0 do i root# + @ mark-list loop
  tmp-root @ mark-list
  sweep ;

: alloc ( -- cell )
  freelist @ -1 = if gc then
  freelist @
  dup cdr# + @ freelist ! ;

: cons ( v tail -- cell )
  alloc
  tuck cdr# + !
  tuck car# + ! ;

: build-list ( len -- cell )
  -1 tmp-root !
  -1 swap
  0 do 100 rnd swap cons dup tmp-root ! loop
  -1 tmp-root ! ;
|};
  (* Generated allocation-site words: one builder per object shape, as a
     real mutator has many distinct allocation sites. *)
  for k = 0 to 11 do
    addf
      ": build-shape%d ( -- cell ) -1 tmp-root ! -1 %d 0 do %d %d rnd + swap        cons dup tmp-root ! loop -1 tmp-root ! ;\n"
      k
      (4 + (k * 3))
      (k * 10)
      (10 + k)
  done;
  addf ": build-any ( sel -- cell ) 12 mod";
  for k = 0 to 11 do
    addf "\n  dup %d = if drop build-shape%d exit then" k k
  done;
  addf "\n  drop build-shape0 ;\n";
  addf
    {|

: sum-list ( cell -- sum )
  0 swap
  begin dup -1 <> while
    dup car# + @ rot + swap cdr# + @
  repeat drop ;

: churn ( -- )
  3 rnd 0= if 49 rnd 1+ build-list else 100 rnd build-any then
  roots# rnd root# + !
  roots# rnd root# + @ sum-list mix
  4 rnd 0= if -1 roots# rnd root# + ! then ;

init-heap
%d 0 do churn loop
gc-count @ mix live-count @ mix
.chk
|}
    (160 * scale);
  Buffer.contents b

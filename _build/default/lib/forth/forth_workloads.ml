type t = {
  name : string;
  description : string;
  source : scale:int -> string;
}

let prelude =
  {|
\ ---- shared prelude: PRNG and checksum ---------------------------
variable seed
12345 seed !
: rnd ( n -- r )  \ linear congruential; result in [0,n)
  seed @ 1103515245 * 12345 + 2147483647 and dup seed ! swap mod ;
variable chk
: mix ( n -- ) chk @ 31 * + 1073741823 and chk ! ;
: .chk chk @ . ;
|}

let wrap ~source ~scale = prelude ^ source ~scale

let all =
  [
    { name = Wl_gray.name; description = Wl_gray.description;
      source = (fun ~scale -> wrap ~source:Wl_gray.source ~scale) };
    { name = Wl_bench_gc.name; description = Wl_bench_gc.description;
      source = (fun ~scale -> wrap ~source:Wl_bench_gc.source ~scale) };
    { name = Wl_tscp.name; description = Wl_tscp.description;
      source = (fun ~scale -> wrap ~source:Wl_tscp.source ~scale) };
    { name = Wl_vmgen.name; description = Wl_vmgen.description;
      source = (fun ~scale -> wrap ~source:Wl_vmgen.source ~scale) };
    { name = Wl_cross.name; description = Wl_cross.description;
      source = (fun ~scale -> wrap ~source:Wl_cross.source ~scale) };
    { name = Wl_brainless.name; description = Wl_brainless.description;
      source = (fun ~scale -> wrap ~source:Wl_brainless.source ~scale) };
    { name = Wl_brew.name; description = Wl_brew.description;
      source = (fun ~scale -> wrap ~source:Wl_brew.source ~scale) };
  ]

let find name = List.find_opt (fun w -> w.name = name) all

(** The Forth instruction set, registered once per process, plus the
    semantics dispatcher. *)

val iset : Vmbp_vm.Instr_set.t
val opcode : string -> int
(** Opcode of a primitive by name. @raise Invalid_argument if unknown. *)

val exec : State.t -> Vmbp_core.Engine.exec
(** Semantics closure over a machine state.  {!State.Trap} exceptions are
    converted into {!Vmbp_vm.Control.Trap}. *)

lib/forth/state.mli: Buffer

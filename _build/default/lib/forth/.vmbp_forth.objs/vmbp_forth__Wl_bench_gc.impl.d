lib/forth/wl_bench_gc.ml: Buffer Printf

lib/forth/instruction_set.ml: Array Control Instr_set Prim Program State Vmbp_core Vmbp_vm

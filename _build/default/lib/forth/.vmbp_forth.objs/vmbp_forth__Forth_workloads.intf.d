lib/forth/forth_workloads.mli:

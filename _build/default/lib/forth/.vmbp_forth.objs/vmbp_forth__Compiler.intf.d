lib/forth/compiler.mli: Vmbp_vm

lib/forth/wl_cross.ml: Printf

lib/forth/wl_brew.ml: Buffer Printf

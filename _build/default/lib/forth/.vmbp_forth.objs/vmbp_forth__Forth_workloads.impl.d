lib/forth/forth_workloads.ml: List Wl_bench_gc Wl_brainless Wl_brew Wl_cross Wl_gray Wl_tscp Wl_vmgen

lib/forth/wl_vmgen.ml: Printf

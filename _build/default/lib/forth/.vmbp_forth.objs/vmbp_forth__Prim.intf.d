lib/forth/prim.mli: State Vmbp_vm

lib/forth/wl_tscp.ml: Buffer List Printf

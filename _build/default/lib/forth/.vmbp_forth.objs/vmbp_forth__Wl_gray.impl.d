lib/forth/wl_gray.ml: Buffer List Printf Random

lib/forth/instruction_set.mli: State Vmbp_core Vmbp_vm

lib/forth/compiler.ml: Array Char Hashtbl Instr Instr_set Instruction_set List Printf Program String Vmbp_vm

lib/forth/state.ml: Array Buffer Printf

lib/forth/prim.ml: Array Buffer Char Control Instr Program State Vmbp_vm

lib/forth/wl_brainless.ml: Array Buffer Printf

(* tscp: chess-search workload (paper Table VI).

   A small but real chess-like searcher: three piece types (knight, king,
   rook), per-type table-driven move generators with captures, per-depth
   move lists, make/unmake, and a one-pass material + centralisation +
   knight-mobility evaluation.  The move and bonus tables are emitted as
   generated initialisation code (cold at run time, like a real program's
   setup), while the hot search/eval code is ordinary looping Forth. *)

let name = "tscp"
let description = "game-tree search: 3-piece chess-lite negamax with captures"

(* Piece encoding: 0 empty; 1/2 knight, 3/4 king, 5/6 rook (odd = white). *)

let on_board r c = r >= 0 && r < 8 && c >= 0 && c < 8

let step_targets offsets sq =
  let r = sq / 8 and c = sq mod 8 in
  List.filter_map
    (fun (dr, dc) ->
      if on_board (r + dr) (c + dc) then Some (((r + dr) * 8) + c + dc)
      else None)
    offsets

let knight_targets =
  step_targets
    [ (-2, -1); (-2, 1); (-1, -2); (-1, 2); (1, -2); (1, 2); (2, -1); (2, 1) ]

let king_targets =
  step_targets
    [ (-1, -1); (-1, 0); (-1, 1); (0, -1); (0, 1); (1, -1); (1, 0); (1, 1) ]

(* Rook rays: for each square and direction, the squares in sliding order. *)
let ray sq (dr, dc) =
  let rec go r c acc =
    let r = r + dr and c = c + dc in
    if on_board r c then go r c (((r * 8) + c) :: acc) else List.rev acc
  in
  go (sq / 8) (sq mod 8) []

let rook_dirs = [ (-1, 0); (1, 0); (0, -1); (0, 1) ]

let centre_bonus sq =
  let d a = min a (7 - a) in
  d (sq / 8) + d (sq mod 8)

let source ~scale =
  let b = Buffer.create (32 * 1024) in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf
    {|
\ ---- tscp: chess-lite negamax ------------------------------------
array brd 64
array ktab 576            \ knight moves: 64 * 9 (count, targets)
array gtab 576            \ king moves, same layout
array rays 2048           \ rook rays: (sq*4 + dir) * 8 (count, targets)
array cbon 64             \ centralisation bonus
array mvf 512             \ move lists, 64 slots per depth
array mvt 512
array mc# 8
array from# 8
array to# 8
array cap# 8
array best# 8
variable nodes
variable gside
variable gdepth
variable gfrom variable gaddr variable gleft
variable mcount

: side ( depth -- s ) 1 and if 1 else 2 then ;
: opp ( s -- s' ) 3 swap - ;
: pside ( p -- s ) dup if 1 and if 1 else 2 then else then ;
: ptype ( p -- t ) 1+ 2/ ;
: pval ( t -- v ) dup 1 = if drop 34 else 2 = if 0 else 54 then then ;

: mine? ( sq -- f ) brd + @ pside gside @ = ;
: takeable? ( sq -- f ) brd + @ dup 0= swap pside gside @ opp = or ;

: push-move ( from to -- )
  gdepth @ 64 * mc# gdepth @ + @ +   ( from to idx )
  dup >r mvt + ! r> mvf + !
  1 mc# gdepth @ + +! ;

: gen-table ( sq base -- )  \ stepping pieces via a 64*9 table
  dup @ 0> if
    dup @ 0 do
      dup i 1+ + @           ( sq base tgt )
      dup takeable? if 2 pick swap push-move else drop then
    loop
  then 2drop ;

: gen-ray ( sq base -- )    \ sliding ray with blocking and captures
  dup @ gleft !  1+ gaddr !  gfrom !
  begin gleft @ 0> while
    -1 gleft +!
    gaddr @ @  1 gaddr +!    ( tgt )
    dup brd + @ 0= if
      gfrom @ swap push-move
    else
      dup brd + @ pside gside @ opp = if
        gfrom @ swap push-move
      else drop then
      0 gleft !
    then
  repeat ;

: gen-rook ( sq -- )
  4 0 do
    dup  dup 4 * i + 8 * rays +  gen-ray
  loop drop ;

: genmoves ( depth s -- )
  gside ! gdepth !
  0 mc# gdepth @ + !
  64 0 do
    i mine? if
      i brd + @ ptype
      dup 1 = if drop i dup 9 * ktab + gen-table else
      dup 2 = if drop i dup 9 * gtab + gen-table else
      drop i gen-rook
      then then
    then
  loop ;

: count-empty ( sq -- n )   \ empty knight-targets, for mobility
  0 mcount !
  9 * ktab +
  dup @ 0> if
    dup @ 0 do
      dup i 1+ + @ brd + @ 0= if 1 mcount +! then
    loop
  then drop mcount @ ;

: eval ( depth -- score )   \ one board pass: material + centre + mobility
  side 0
  64 0 do
    i brd + @ ?dup if       ( s acc p )
      dup pside 3 pick = if
        dup ptype pval i cbon + @ +
        over ptype 1 = if i count-empty + then
        rot + nip
      else
        dup ptype pval i cbon + @ +
        over ptype 1 = if i count-empty + then
        rot swap - nip
      then
    then
  loop nip ;

: domove ( depth -- )
  dup to# + @ brd + @ over cap# + !
  dup from# + @ brd + @
  over to# + @ brd + !
  0 over from# + @ brd + !
  drop ;

: undomove ( depth -- )
  dup to# + @ brd + @
  over from# + @ brd + !
  dup cap# + @
  over to# + @ brd + !
  drop ;

: search ( depth -- score )
  1 nodes +!
  dup 0= if eval exit then
  dup dup side genmoves
  -100000 over best# + !
  dup mc# + @ 0> if
    dup mc# + @ 0 do
      dup 64 * i +           ( d idx )
      dup mvf + @ 2 pick from# + !
      mvt + @ over to# + !
      dup domove
      dup 1- recurse negate
      over best# + dup @ rot max swap !
      dup undomove
    loop
  then
  best# + @ ;

: place-piece ( p -- )
  begin
    64 rnd dup brd + @ 0=
    if over swap brd + ! 1 else drop 0 then
  until drop ;

: position ( k -- )
  7919 * 31 + seed !
  64 0 do 0 i brd + ! loop
  1 place-piece 1 place-piece 3 place-piece 5 place-piece
  2 place-piece 2 place-piece 4 place-piece 6 place-piece
  2 search mix
  nodes @ mix ;
|};
  (* Generated table initialisation. *)
  let emit_table name9 targets_of =
    addf ": init-%s" name9;
    for sq = 0 to 63 do
      let ts = targets_of sq in
      addf "\n  %d %d %s + !" (List.length ts) (sq * 9) name9;
      List.iteri
        (fun k t -> addf " %d %d %s + !" t ((sq * 9) + 1 + k) name9)
        ts
    done;
    addf " ;\n"
  in
  emit_table "ktab" knight_targets;
  emit_table "gtab" king_targets;
  addf ": init-rays";
  for sq = 0 to 63 do
    List.iteri
      (fun d dir ->
        let ts = ray sq dir in
        let base = ((sq * 4) + d) * 8 in
        addf "\n  %d %d rays + !" (List.length ts) base;
        List.iteri
          (fun k t -> addf " %d %d rays + !" t (base + 1 + k))
          ts)
      rook_dirs
  done;
  addf " ;\n";
  addf ": init-cbon";
  for sq = 0 to 63 do
    addf " %d %d cbon + !" (centre_bonus sq) sq
  done;
  addf " ;\n";
  addf
    {|
init-ktab init-gtab init-rays init-cbon
0 nodes !
%d 0 do i position loop
.chk
|}
    scale;
  Buffer.contents b

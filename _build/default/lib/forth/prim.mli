(** The Forth VM's primitive instruction set.

    Each primitive bundles its native-code shape (for the layout model,
    calibrated against Gforth's x86 routines) with its execution semantics.
    Primitives performing I/O or calling complex external code are marked
    non-relocatable, as in Gforth (Section 5.2). *)

type t = {
  name : string;
  work_instrs : int;
  work_bytes : int;
  relocatable : bool;
  branch : Vmbp_vm.Instr.branch_kind;
  operand_count : int;
  run : State.t -> Vmbp_vm.Program.t -> int -> int array -> Vmbp_vm.Control.t;
      (** [run state program pc operands] *)
}

val all : t list
(** Every primitive, in registration order. *)

(** Compiler from a Forth subset to VM code.

    This is the interpreter front end in the paper's architecture
    (Section 2.1): it runs once, producing flat VM code that the dispatch
    techniques then optimize.  The accepted language:

    - colon definitions [: name ... ;] with [recurse] and [exit]
    - control flow: [if]/[else]/[then], [begin]/[until], [begin]/[again],
      [begin]/[while]/[repeat], [do]/[loop]/[+loop]/[leave], [i], [j],
      [case]/[of]/[endof]/[endcase]
    - defining words (top level only): [variable name],
      [value constant name] (the value must be a literal),
      [array name size] (size cells of data space)
    - [' name] pushes a word's execution token for [execute]
    - [char c] pushes a character code; [." text"] prints text
    - decimal number literals; [\ ] and [( ... )] comments
    - every primitive in {!Prim.all}

    Top-level code becomes the program's [main]; definitions must precede
    their first use. *)

exception Error of string
(** Compilation error with a human-readable message. *)

type unit_ = {
  program : Vmbp_vm.Program.t;
  words : (string * int) list;  (** colon-definition entry slots *)
}

val compile_unit : name:string -> string -> unit_
(** Compile a source string.  The generated program starts with a prologue
    reserving the compiler's data space, runs the top-level code and halts.
    All word entry points are exposed as program entries (they are
    [execute] targets).
    @raise Error on malformed source. *)

val compile : name:string -> string -> Vmbp_vm.Program.t
(** [compile_unit] keeping only the program. *)

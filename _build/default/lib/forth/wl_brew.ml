(* brew: evolutionary-programming workload (paper Table VI).

   The largest Forth program, like the 30000-line original: the fitness
   evaluator is *generated per individual* -- sixteen fully unrolled words
   with the genome and target addresses inline -- and evaluation is
   incremental (only the replaced individual is re-scored each
   generation), so at any moment a small fraction of the program is hot
   while the bulk is cold, as in real generated code. *)

let name = "brew"

let description =
  "evolutionary programming: generated per-individual evaluators, incremental scoring"

let pop = 16
let glen = 64

let source ~scale =
  let b = Buffer.create (64 * 1024) in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf
    {|
\ ---- brew: genetic algorithm (generated evaluators) --------------
%d constant pop#
%d constant glen
array genes %d
array target %d
array fit# %d
array ftab %d
variable best variable worst

: gaddr ( ind pos -- addr ) swap glen * + genes + ;

: init-pop ( -- )
  glen 0 do 2 rnd i target + ! loop
  pop# 0 do
    glen 0 do 2 rnd j i gaddr ! loop
  loop ;
|}
    pop glen (pop * glen) glen pop pop;
  (* One fully unrolled evaluator per individual. *)
  for ind = 0 to pop - 1 do
    addf ": fit-ind%d ( -- n ) 0" ind;
    for g = 0 to glen - 1 do
      let addr = (ind * glen) + g in
      match (ind + g) mod 3 with
      | 0 -> addf "\n  %d genes + @ %d target + @ = if 1+ then" addr g
      | 1 -> addf "\n  %d genes + @ %d target + @ = 1 and +" addr g
      | _ -> addf "\n  %d genes + @ %d target + @ xor 0= if 1+ then" addr g
    done;
    addf " ;\n"
  done;
  addf ": init-ftab";
  for ind = 0 to pop - 1 do
    addf " ' fit-ind%d %d ftab + !" ind ind
  done;
  addf " ;\n";
  addf
    {|
: score ( ind -- )        \ recompute one individual's cached fitness
  dup ftab + @ execute swap fit# + ! ;

: eval-all ( -- )
  pop# 0 do i score loop ;

: find-extremes ( -- )
  0 best ! 0 worst !
  pop# 0 do
    i fit# + @ best @ fit# + @ > if i best ! then
    i fit# + @ worst @ fit# + @ < if i worst ! then
  loop ;

: breed ( -- )            \ child of (best x random mate) replaces worst
  pop# rnd
  glen rnd                 ( mate cut )
  glen 0 do
    i over < if best @ else over then
    i gaddr @
    worst @ i gaddr !
    50 rnd 0= if worst @ i gaddr dup @ 1 swap - swap ! then
  loop
  2drop ;

: generation ( -- )
  find-extremes breed
  worst @ score            \ incremental: only the new child is re-scored
  best @ fit# + @ mix ;

: epoch ( k -- )
  7919 * 5 + seed !
  init-pop
  eval-all
  80 0 do generation loop ;

init-ftab
%d 0 do i epoch loop
.chk
|}
    (2 * scale);
  Buffer.contents b

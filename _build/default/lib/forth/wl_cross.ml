(* cross: compiler workload (paper Table VI).

   Compiles randomly generated well-formed RPN expressions into a
   three-address target code with lazy constant folding and stack-slot
   register allocation, then checks the compiler against a direct RPN
   evaluator by simulating the emitted code.  The emit/fold/simulate loops
   are the instruction mix of a small compiler back end. *)

let name = "cross"
let description = "compiler: RPN to three-address code with constant folding"

let source ~scale =
  Printf.sprintf
    {|
\ ---- cross: expression compiler ----------------------------------
array rpn 128
array tcode 1024
array kstk 64             \ per stack slot: constant value or -1 (in reg)
array regs 32
array estk 32
array acode 2048          \ second backend: accumulator machine
array amem 64             \ its spill slots
variable rlen
variable tlen
variable alen
variable asp
variable acc'
variable vsp
variable esp

\ random well-formed RPN: 0..9 literals, 10 +, 11 -, 12 *
: gen-rpn ( -- )
  0 rlen ! 0
  begin
    dup 24 < rlen @ 120 < and
  while
    dup 2 < 4 rnd 0= or if
      10 rnd rlen @ rpn + ! 1 rlen +! 1+
    else
      3 rnd 10 + rlen @ rpn + ! 1 rlen +! 1-
    then
  repeat
  begin dup 1 > while 10 rlen @ rpn + ! 1 rlen +! 1- repeat
  drop ;

: emit-t ( w -- ) tlen @ tcode + ! 1 tlen +! ;

: c-lit ( v -- ) vsp @ kstk + ! 1 vsp +! ;

\ ensure the value at stack slot [pos] is materialised in register [pos]
: force ( pos -- )
  dup kstk + @ dup 0 >= if
    over 256 * + 65536 + emit-t
    -1 swap kstk + !
  else 2drop then ;

: c-op ( opid -- )        \ 2 add, 3 sub, 4 mul
  vsp @ 2 - vsp @ 1-      ( opid p1 p2 )
  dup kstk + @ 0 >= 2 pick kstk + @ 0 >= and if
    over kstk + @ over kstk + @     ( opid p1 p2 k1 k2 )
    4 pick 2 = if + else 4 pick 3 = if - else * then then
    swap drop                       ( opid p1 kr )
    swap kstk + !
    drop
  else
    over force dup force
    swap 256 * + swap 65536 * + emit-t
  then
  -1 vsp +! ;

: compile-rpn ( -- )
  0 vsp ! 0 tlen !
  rlen @ 0 do
    i rpn + @ dup 10 < if c-lit else 8 - c-op then
  loop ;

: simulate ( -- )
  tlen @ 0> if
    tlen @ 0 do
      i tcode + @
      dup 65536 / swap 65535 and
      dup 256 / swap 255 and          ( op a b )
      2 pick case
        1 of swap regs + ! drop endof
        2 of regs + @ swap regs + dup @ rot + swap ! drop endof
        3 of regs + @ swap regs + dup @ rot - swap ! drop endof
        4 of regs + @ swap regs + dup @ rot * swap ! drop endof
      endcase
    loop
  then ;

: result ( -- v )
  0 kstk + @ dup 0 >= if else drop 0 regs + @ then ;

\ ---- backend B: single-accumulator machine --------------------------
\ ops: 1 load-imm, 2 load-slot, 3 store-slot, 4 add-slot, 5 sub-slot,
\ 6 mul-slot; operand in the low byte.
: emit-a ( w -- ) alen @ acode + ! 1 alen +! ;

: a-lit ( v -- )             \ spill current acc, load the literal
  asp @ 0> if then
  1 256 * swap + emit-a
  3 256 * asp @ + emit-a     \ store into the next slot
  1 asp +! ;

: a-op ( opid -- )           \ 4 add, 5 sub, 6 mul on the top two slots
  -1 asp +!
  2 256 * asp @ 1- + emit-a  \ load left operand
  256 * asp @ + emit-a       \ apply with the right operand
  3 256 * asp @ 1- + emit-a  \ store result over the left slot
  ;

: compile-a ( -- )
  0 asp ! 0 alen !
  rlen @ 0 do
    i rpn + @ dup 10 < if a-lit else 6 - a-op then
  loop ;

: run-a ( -- v )
  0 acc' !
  alen @ 0> if
    alen @ 0 do
      i acode + @
      dup 256 / swap 255 and   ( op arg )
      over 1 = if nip acc' ! else
      over 2 = if nip amem + @ acc' ! else
      over 3 = if nip amem + acc' @ swap ! else
      over 4 = if nip amem + @ acc' @ + acc' ! else
      over 5 = if nip amem + @ acc' @ swap - acc' ! else
        nip amem + @ acc' @ * acc' !
      then then then then then
    loop
  then
  acc' @ ;

: epush ( v -- ) esp @ estk + ! 1 esp +! ;
: epop ( -- v ) -1 esp +! esp @ estk + @ ;

: rpn-eval ( -- v )
  0 esp !
  rlen @ 0 do
    i rpn + @ dup 10 < if epush else
      epop epop swap                  ( tok v1 v2 )
      2 pick 10 = if + else
      2 pick 11 = if - else * then then
      nip epush
    then
  loop
  epop ;

: xround ( k -- )
  7919 * 13 + seed !
  gen-rpn compile-rpn simulate
  compile-a
  result rpn-eval
  2dup - mix                          \ 0 whenever the compiler is correct
  + mix
  run-a rpn-eval - mix                \ backend B must agree as well
  tlen @ mix  alen @ mix ;

%d 0 do i xround loop
.chk
|}
    (30 * scale)

(* brainless: second game-search workload (paper Table VI).

   Connect-four on a 7x6 board: negamax with win detection on the last
   move, per-depth move state, and a weighted-occupancy evaluation.  The
   two sides search to different depths, so full games stay cheap while
   still exercising deep recursive call chains. *)

let name = "brainless"
let description = "game-tree search: connect-four negamax with win detection"

let source ~scale =
  let b = Buffer.create 8192 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf
    {|
\ ---- brainless: connect four -------------------------------------
array b7 42               \ column-major: cell = col*6 + row
array h7 7                \ column heights
array colw 7              \ column weights for the evaluation
array mv# 8
array best# 8
variable nodes
variable wc variable wr variable ws variable wdc variable wdr
variable turn variable bestmv variable bv variable moves#

: init-w ( -- )
  1 0 colw + ! 2 1 colw + ! 3 2 colw + ! 4 3 colw + !
  3 4 colw + ! 2 5 colw + ! 1 6 colw + ! ;

: wside ( depth -- s ) 1 and if 1 else 2 then ;

: cell ( c r -- v ) swap 6 * + b7 + @ ;

: inb? ( c r -- c r f )
  over 0 >= over 0 >= and
  2 pick 7 < and
  over 6 < and ;

: ray ( -- n )              \ own stones from (wc+wdc, wr+wdr) onward
  0  wc @ wdc @ +  wr @ wdr @ +
  begin
    inb? if 2dup cell ws @ = else 0 then
  while
    rot 1+ -rot
    swap wdc @ + swap wdr @ +
  repeat
  2drop ;

: dir-win? ( dc dr -- f )
  wdr ! wdc ! ray
  wdc @ negate wdc !  wdr @ negate wdr !  ray
  + 1+ 4 >= ;

: win? ( c r s -- f )
  ws ! wr ! wc !
  1 0 dir-win?
  0 1 dir-win? or
  1 1 dir-win? or
  1 -1 dir-win? or ;

|};
  (* Generated unrolled evaluation: one word per column, weights inline. *)
  let weights = [| 1; 2; 3; 4; 3; 2; 1 |] in
  for col = 0 to 6 do
    addf ": evcol%d ( s -- n ) 0" col;
    for row = 0 to 5 do
      let idx = (col * 6) + row in
      let w = weights.(col) in
      match (col + row) mod 2 with
      | 0 ->
          addf
            "\n  %d b7 + @ dup 0= if drop else 2 pick = if %d + else %d - then then"
            idx w w
      | _ ->
          addf
            "\n  %d b7 + @ ?dup 0= if else 2 pick = if %d + else %d - then then"
            idx w w
    done;
    addf "\n  nip ;\n"
  done;
  addf ": ev ( depth -- score ) wside dup evcol0";
  for col = 1 to 6 do
    addf " over evcol%d +" col
  done;
  addf " nip ;\n";
  addf
    {|

: domove ( depth -- )
  dup mv# + @ over wside     ( depth c s )
  over h7 + @                ( depth c s r )
  rot 6 * + b7 + !           ( depth )
  dup mv# + @ h7 + dup @ 1+ swap !
  drop ;

: undomove ( depth -- )
  mv# + @ dup                ( c c )
  h7 + dup @ 1- dup rot !    ( c r )
  swap 6 * + b7 + 0 swap ! ;

: c4search ( depth -- score )
  1 nodes +!
  dup 0= if ev exit then
  -100000 over best# + !
  7 0 do
    i h7 + @ 6 < if
      i over mv# + !
      dup domove
      i  i h7 + @ 1-  2 pick wside  win? if
        9000 over + over best# + !
        dup undomove
      else
        dup 1- recurse negate
        over best# + dup @ rot max swap !
        dup undomove
      then
    then
  loop
  best# + @ ;

: choose ( rootdepth -- c )
  -1 bestmv !  -200000 bv !
  7 0 do
    i h7 + @ 6 < if
      i over mv# + !
      dup domove
      i  i h7 + @ 1-  2 pick wside  win? if
        9999
      else
        dup 1- c4search negate
      then                       ( d score )
      dup bv @ > if dup bv ! i bestmv ! then
      drop
      dup undomove
    then
  loop
  drop bestmv @ ;

: game ( -- )
  begin
    moves# @ 42 <
  while
    2 choose                              ( c )
    dup 0 < if drop exit then
    dup h7 + @                            ( c r )
    over 6 * over + b7 + turn @ swap !    \ b7[c*6+r] = turn
    over h7 + dup @ 1+ swap !             ( c r )
    turn @ win? if turn @ mix 1000 mix exit then
    1 moves# +!
    turn @ 3 swap - turn !
  repeat ;

: play ( k -- )
  7919 * 77 + seed !
  42 0 do 0 i b7 + ! loop
  7 0 do 0 i h7 + ! loop
  1 turn !  0 moves# !
  game
  moves# @ mix nodes @ mix ;

init-w
0 nodes !
%d 0 do i play loop
.chk
|}
    scale;
  Buffer.contents b

(* gray: parser-generator workload (paper Table VI).

   Like a real parser generator's output, most of this program is
   *generated code*: the OCaml side draws a random grammar and emits one
   Forth word per rule (pushing the rule's right-hand side) plus the rule
   tables' initialisation code.  At run time the program computes FIRST
   sets by fixpoint iteration, builds an LL-style action table, and drives
   bounded leftmost derivations, dispatching to the per-rule words through
   an execution-token table ([execute]), as table-driven generated parsers
   do. *)

let name = "gray"

let description =
  "parser generator: generated per-rule words, FIRST fixpoints, derivations"

let n_nt = 12
let n_t = 12
let n_rules = 48
let rhs_max = 4

(* The grammar is fixed at generation time (the 'grammar file'). *)
let grammar seed =
  let rng = Random.State.make [| seed |] in
  List.init n_rules (fun r ->
      if r < n_nt then
        (* guarantee progress: rule r < n_nt derives nonterminal r into a
           terminal-headed rhs *)
        ( r,
          [
            n_nt + Random.State.int rng n_t;
            Random.State.int rng n_nt;
          ] )
      else
        let lhs = Random.State.int rng n_nt in
        let len = 1 + Random.State.int rng (rhs_max - 1) in
        (lhs, List.init len (fun _ -> Random.State.int rng (n_nt + n_t))))

let source ~scale =
  let rules = grammar 0xC0FFEE in
  let b = Buffer.create 8192 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf
    {|
\ ---- gray: parser generator (generated code) ---------------------
%d constant #nt
%d constant #t
%d constant #rules
array lhs# %d
array len# %d
array rhs# %d
array first# %d
array act# %d
array rtab %d
array dstack 512
variable dsp
variable changed

: terminal? ( sym -- f ) #nt >= ;
: tbit ( t -- bit ) #nt - 1 swap lshift ;

: dpush ( sym -- )
  dsp @ 500 < if dstack dsp @ + !  1 dsp +! else drop then ;
|}
    n_nt n_t n_rules n_rules n_rules (n_rules * rhs_max) n_nt (n_nt * n_t)
    n_rules;
  (* Generated rule tables: one initialisation word per rule. *)
  List.iteri
    (fun r (lhs, rhs) ->
      addf ": init-rule%d %d %d lhs# + ! %d %d len# + !" r lhs r
        (List.length rhs) r;
      List.iteri
        (fun k sym -> addf " %d %d rhs# + !" sym ((r * rhs_max) + k))
        rhs;
      addf " ;\n")
    rules;
  addf ": init-rules";
  List.iteri (fun r _ -> addf " init-rule%d" r) rules;
  addf " ;\n\n";
  (* Generated per-rule expansion words: push the rhs, last symbol first,
     exactly what a generated table-driven parser contains. *)
  List.iteri
    (fun r (_lhs, rhs) ->
      addf ": rule%d" r;
      List.iter (fun sym -> addf " %d dpush" sym) (List.rev rhs);
      addf " ;\n")
    rules;
  addf ": init-rtab";
  List.iteri (fun r _ -> addf " ' rule%d %d rtab + !" r r) rules;
  addf " ;\n";
  addf
    {|
: sym-first ( sym -- bits )
  dup terminal? if tbit else first# + @ then ;

: first-pass ( -- )
  0 changed !
  #rules 0 do
    i 4 * rhs# + @ sym-first
    i lhs# + @ first# +
    dup @
    rot over or
    2dup <> if 1 changed ! then
    nip swap !
  loop ;

: compute-first ( -- )
  #nt 0 do 0 i first# + ! loop
  begin first-pass changed @ 0= until ;

: build-actions ( -- )
  #nt #t * 0 do -1 i act# + ! loop
  #rules 0 do
    i 4 * rhs# + @ sym-first
    #t 0 do
      dup 1 i lshift and if
        j  j lhs# + @ #t * i +  act# + !
      then
    loop
    drop
  loop ;

: derive ( start steps -- )
  0 dsp !
  swap dpush
  0 do
    dsp @ 0= if leave then
    -1 dsp +!  dstack dsp @ + @
    dup terminal? if mix
    else
      dup #t * #t rnd + act# + @
      dup 0< if drop mix else nip rtab + @ execute then
    then
  loop ;

: round ( k -- )
  7919 * 1+ seed !
  compute-first build-actions
  #nt 0 do i first# + @ mix loop
  #nt #t * 0 do i act# + @ 255 and mix loop
  0 900 derive ;

init-rules init-rtab
%d 0 do i round loop
.chk
|}
    (20 * scale);
  Buffer.contents b

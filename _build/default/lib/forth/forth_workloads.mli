(** The Forth benchmark programs (paper Table VI substitutes).

    Each workload is a self-contained Forth program with the same workload
    character as the corresponding Gforth benchmark: [gray] (parser
    generator), [bench-gc] (garbage collector), [tscp] and [brainless]
    (game-tree search), [vmgen] (interpreter generator running a generated
    interpreter), [cross] (compiler to a synthetic target), [brew]
    (evolutionary programming).  Forth style is deliberately idiomatic --
    many short colon definitions -- so that basic blocks stay short, as the
    paper observes for real Forth code (Section 7.3). *)

type t = {
  name : string;
  description : string;
  source : scale:int -> string;
      (** Forth source; [scale] controls iteration counts.  Scale 1 suits
          unit tests, scale 10 the benchmark harness. *)
}

val all : t list
val find : string -> t option

val prelude : string
(** Shared utility words (PRNG, checksum mixing) prepended to every
    workload. *)

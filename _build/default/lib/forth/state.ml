exception Trap of string

type t = {
  stack : int array;
  mutable sp : int;
  rstack : int array;
  mutable rsp : int;
  memory : int array;
  mutable here : int;
  out : Buffer.t;
}

let create ?(stack_cells = 4096) ?(rstack_cells = 4096)
    ?(memory_cells = 1 lsl 20) () =
  {
    stack = Array.make stack_cells 0;
    sp = 0;
    rstack = Array.make rstack_cells 0;
    rsp = 0;
    memory = Array.make memory_cells 0;
    here = 16;  (* a small red zone so address 0 stays invalid-ish *)
    out = Buffer.create 256;
  }

let push t v =
  if t.sp >= Array.length t.stack then raise (Trap "data stack overflow");
  t.stack.(t.sp) <- v;
  t.sp <- t.sp + 1

let pop t =
  if t.sp = 0 then raise (Trap "data stack underflow");
  t.sp <- t.sp - 1;
  t.stack.(t.sp)

let peek t =
  if t.sp = 0 then raise (Trap "data stack underflow");
  t.stack.(t.sp - 1)

let pick t n =
  if n < 0 || n >= t.sp then raise (Trap "pick out of range");
  t.stack.(t.sp - 1 - n)

let rpush t v =
  if t.rsp >= Array.length t.rstack then raise (Trap "return stack overflow");
  t.rstack.(t.rsp) <- v;
  t.rsp <- t.rsp + 1

let rpop t =
  if t.rsp = 0 then raise (Trap "return stack underflow");
  t.rsp <- t.rsp - 1;
  t.rstack.(t.rsp)

let rpeek t n =
  if n < 0 || n >= t.rsp then raise (Trap "return stack peek out of range");
  t.rstack.(t.rsp - 1 - n)

let load t addr =
  if addr < 0 || addr >= Array.length t.memory then
    raise (Trap (Printf.sprintf "load out of range: %d" addr));
  t.memory.(addr)

let store t addr v =
  if addr < 0 || addr >= Array.length t.memory then
    raise (Trap (Printf.sprintf "store out of range: %d" addr));
  t.memory.(addr) <- v

let allot t n =
  if n < 0 then raise (Trap "allot: negative size");
  if t.here + n > Array.length t.memory then raise (Trap "data space exhausted");
  let addr = t.here in
  t.here <- t.here + n;
  addr

let output t = Buffer.contents t.out
let depth t = t.sp

(* vmgen: interpreter-generator workload (paper Table VI).

   Meta-circular flavour: builds a dispatch table of execution tokens for a
   ten-instruction stack bytecode, generates bytecode programs (a counted
   sum-of-squares loop and random straight-line arithmetic), and interprets
   them with [execute] -- so the hosted interpreter's dispatch runs through
   the host VM's indirect-call machinery. *)

let name = "vmgen"
let description = "interpreter generator: table-driven bytecode interpreter via execute"

let source ~scale =
  Printf.sprintf
    {|
\ ---- vmgen: hosted bytecode interpreter --------------------------
array vcode 256
array vstk 64
array vtab 16
variable vsp'
variable vip
variable vrunning
variable vsteps
variable gp

: vpush ( n -- ) vsp' @ vstk + ! 1 vsp' +! ;
: vpop ( -- n ) -1 vsp' +! vsp' @ vstk + @ ;
: varg ( -- n ) vip @ vcode + @ 1 vip +! ;

: op-push varg vpush ;
: op-add vpop vpop + vpush ;
: op-sub vpop vpop swap - vpush ;
: op-mul vpop vpop * vpush ;
: op-dup vpop dup vpush vpush ;
: op-swap vpop vpop swap vpush vpush ;
: op-rot vpop vpop vpop swap vpush swap vpush vpush ;
: op-drop vpop drop ;
: op-jnz varg vpop 0= if drop else vip ! then ;
: op-halt 0 vrunning ! ;
: op-neg vpop negate vpush ;
: op-inc vpop 1+ vpush ;
: op-dec vpop 1- vpush ;
: op-and vpop vpop and vpush ;
: op-or vpop vpop or vpush ;
: op-xor vpop vpop xor vpush ;

: init-vtab ( -- )
  ' op-push 0 vtab + !
  ' op-add  1 vtab + !
  ' op-sub  2 vtab + !
  ' op-mul  3 vtab + !
  ' op-dup  4 vtab + !
  ' op-swap 5 vtab + !
  ' op-rot  6 vtab + !
  ' op-drop 7 vtab + !
  ' op-jnz  8 vtab + !
  ' op-halt 9 vtab + !
  ' op-neg 10 vtab + !
  ' op-inc 11 vtab + !
  ' op-dec 12 vtab + !
  ' op-and 13 vtab + !
  ' op-or  14 vtab + !
  ' op-xor 15 vtab + ! ;

: vrun ( -- )
  0 vip ! 0 vsp' ! 1 vrunning ! 0 vsteps !
  begin vrunning @ vsteps @ 20000 < and while
    vip @ vcode + @ 1 vip +!
    vtab + @ execute
    1 vsteps +!
  repeat ;

: g, ( w -- ) gp @ vcode + ! 1 gp +! ;

\ bytecode for: acc = sum of i*i for i = n downto 1
: gen-sum ( n -- )
  0 gp !
  0 g, 0 g,          \ push 0      (acc)
  0 g, g,            \ push n      (counter)
  gp @               ( loopstart )
  4 g, 4 g,          \ dup dup
  3 g,               \ mul
  6 g,               \ rot
  1 g,               \ add
  5 g,               \ swap
  0 g, 1 g,          \ push 1
  2 g,               \ sub
  4 g,               \ dup
  8 g, g,            \ jnz loopstart
  7 g,               \ drop
  9 g, ;             \ halt

\ random well-formed straight-line arithmetic, tracked stack depth
: gen-rand ( -- )
  0 gp !  0
  begin dup 20 < gp @ 200 < and while
    dup 2 < 3 rnd 0= or if
      0 g, 10 rnd g, 1+
    else
      4 rnd 0= if
        10 6 rnd 2 mod + g,        \ a unary op: neg or inc (keep depth)
      else
        6 rnd dup 3 < if 1+ else 10 + then g, 1-
      then
    then
  repeat
  begin dup 1 > while 1 g, 1- repeat
  drop
  9 g, ;

: vres ( -- v )
  vsp' @ 0> if vsp' @ 1- vstk + @ else 0 then ;

: vround ( k -- )
  dup 7919 * 21 + seed !
  30 mod 5 + gen-sum vrun vres mix vsteps @ mix
  gen-rand vrun vres mix ;

init-vtab
%d 0 do i vround loop
.chk
|}
    (25 * scale)

type t =
  | Next
  | Jump of int
  | Halt
  | Trap of string
  | Quicken of quicken

and quicken = { new_opcode : int; new_operands : int array; after : t }

let rec pp ppf = function
  | Next -> Format.pp_print_string ppf "next"
  | Jump slot -> Format.fprintf ppf "jump %d" slot
  | Halt -> Format.pp_print_string ppf "halt"
  | Trap msg -> Format.fprintf ppf "trap %S" msg
  | Quicken q ->
      Format.fprintf ppf "quicken(#%d, then %a)" q.new_opcode pp q.after

(** Basic-block decomposition of a VM program.

    Dynamic superinstructions are formed per basic block (Section 5.2), so
    block boundaries determine where dispatches survive.  A leader is the
    program entry, any statically known entry point, any branch/call target,
    or the slot following an instruction that ends a block. *)

type block = {
  id : int;
  start : int;  (** first slot of the block *)
  stop : int;  (** last slot of the block, inclusive *)
}

type t = {
  blocks : block array;
  block_of_slot : int array;  (** block id covering each slot *)
  leader : bool array;  (** whether each slot starts a block *)
}

val analyze : Program.t -> t

val slots : block -> int list
(** Slot indices of the block, in order. *)

val opcode_key : Program.t -> block -> string
(** A hash key identifying the block's opcode sequence; identical basic
    blocks (same key) share one dynamic superinstruction in the
    [Dynamic_super] technique (Piumarta and Riccardi 1998). *)

val pp : Program.t -> Format.formatter -> t -> unit

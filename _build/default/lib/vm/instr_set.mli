(** A virtual machine's instruction set: the table of all its instruction
    descriptors, indexed by opcode.

    Front ends build their set once with [register] calls and then freeze it;
    the Forth VM and the mini-JVM each own one instruction set. *)

type t

val create : name:string -> t

val register :
  t ->
  name:string ->
  work_instrs:int ->
  work_bytes:int ->
  ?relocatable:bool ->
  ?branch:Instr.branch_kind ->
  ?operand_count:int ->
  ?quickable:bool ->
  ?quick_of:int ->
  unit ->
  int
(** Add one instruction and return its opcode.  [relocatable] defaults to
    [true], [branch] to [Straight], [operand_count] to [0]. *)

val set_quick_family : t -> original:int -> quicks:int list -> unit
(** Declare the quick versions a quickable instruction may rewrite itself
    to; used by the dynamic techniques to size the code gap left for the
    quick routine (Section 5.4). *)

val name : t -> string
val size : t -> int
val get : t -> int -> Instr.t
(** @raise Invalid_argument on an unknown opcode. *)

val find : t -> string -> int option
(** Opcode of the instruction with the given name. *)

val find_exn : t -> string -> int

val iter : t -> (Instr.t -> unit) -> unit

val max_quick_bytes : t -> int -> int
(** For a quickable opcode, the largest routine size among its quick
    versions and itself: the gap the dynamic techniques must reserve. *)

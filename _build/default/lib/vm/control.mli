(** Control outcome of executing one VM instruction.

    The front end's semantics returns one of these to the generic engine,
    which uses it both to advance the VM instruction pointer and to decide
    whether a dispatch indirect branch executes (taken VM branches dispatch,
    fall-through inside an across-basic-blocks superinstruction does not --
    Section 5.2). *)

type t =
  | Next  (** fall through to the following slot *)
  | Jump of int  (** taken control transfer to an absolute slot index *)
  | Halt  (** program finished normally *)
  | Trap of string  (** VM-level error; aborts the run *)
  | Quicken of quicken
      (** the instruction rewrote itself: patch the code, then continue *)

and quicken = {
  new_opcode : int;  (** quick version to install at the current slot *)
  new_operands : int array;  (** resolved operands (e.g. a field offset) *)
  after : t;  (** control outcome of this first execution *)
}

val pp : Format.formatter -> t -> unit

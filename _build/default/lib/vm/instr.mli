(** VM instruction descriptors.

    A descriptor records everything the dispatch optimizer and the machine
    simulator need to know about one VM instruction: the shape of the native
    routine implementing it (instruction count and code bytes), whether the
    routine is relocatable (copyable by the dynamic techniques, Section 5.2),
    its control-flow behaviour, and its quickening relationships
    (Section 5.4).  Execution semantics live with each VM front end, keyed by
    opcode. *)

type branch_kind =
  | Straight  (** ordinary instruction; control falls through *)
  | Cond_branch of int
      (** conditional VM branch; the operand at this index holds the target
          slot.  May fall through or jump. *)
  | Uncond_branch of int  (** unconditional VM branch (GOTO) *)
  | Indirect_branch  (** target computed at run time (e.g. tableswitch) *)
  | Call of int  (** direct call; operand holds the callee entry slot *)
  | Indirect_call  (** callee resolved at run time (e.g. invokevirtual) *)
  | Return  (** VM-level return *)
  | Stop  (** halts the virtual machine *)

type t = {
  opcode : int;  (** index in the owning {!Instr_set.t} *)
  name : string;
  work_instrs : int;  (** native instructions of the routine body *)
  work_bytes : int;  (** code bytes of the routine body *)
  relocatable : bool;  (** whether dynamic techniques may copy the routine *)
  branch : branch_kind;
  operand_count : int;  (** immediate operands stored in the VM code slot *)
  quickable : bool;  (** rewrites itself to a quick version on first run *)
  quick_of : int option;  (** original opcode when this is a quick version *)
  mutable quick_targets : int list;
      (** possible quick replacements of a quickable instruction; filled in
          by {!Instr_set.set_quick_family} after all opcodes exist *)
}

val is_basic_block_end : t -> bool
(** True when VM code execution cannot simply fall through this instruction
    into the next slot as straight-line code: branches, calls, returns and
    stops all end a basic block. *)

val can_fall_through : t -> bool
(** True when control may continue at the next slot ([Straight],
    [Cond_branch] and [Call]/[Indirect_call], whose callees return). *)

val pp : Format.formatter -> t -> unit

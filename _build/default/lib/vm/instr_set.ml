type t = {
  set_name : string;
  mutable instrs : Instr.t array;
  mutable count : int;
  by_name : (string, int) Hashtbl.t;
}

let dummy =
  {
    Instr.opcode = -1;
    name = "<none>";
    work_instrs = 0;
    work_bytes = 0;
    relocatable = true;
    branch = Instr.Straight;
    operand_count = 0;
    quickable = false;
    quick_of = None;
    quick_targets = [];
  }

let create ~name =
  { set_name = name; instrs = Array.make 64 dummy; count = 0;
    by_name = Hashtbl.create 64 }

let register t ~name ~work_instrs ~work_bytes ?(relocatable = true)
    ?(branch = Instr.Straight) ?(operand_count = 0) ?(quickable = false)
    ?quick_of () =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Instr_set.register: duplicate %S" name);
  let opcode = t.count in
  if opcode >= Array.length t.instrs then begin
    let bigger = Array.make (2 * Array.length t.instrs) dummy in
    Array.blit t.instrs 0 bigger 0 t.count;
    t.instrs <- bigger
  end;
  t.instrs.(opcode) <-
    {
      Instr.opcode;
      name;
      work_instrs;
      work_bytes;
      relocatable;
      branch;
      operand_count;
      quickable;
      quick_of;
      quick_targets = [];
    };
  t.count <- t.count + 1;
  Hashtbl.replace t.by_name name opcode;
  opcode

let name t = t.set_name
let size t = t.count

let get t opcode =
  if opcode < 0 || opcode >= t.count then
    invalid_arg (Printf.sprintf "Instr_set.get: opcode %d out of range" opcode);
  t.instrs.(opcode)

let set_quick_family t ~original ~quicks =
  let instr = get t original in
  if not instr.Instr.quickable then
    invalid_arg "Instr_set.set_quick_family: original is not quickable";
  instr.Instr.quick_targets <- quicks

let find t name = Hashtbl.find_opt t.by_name name

let find_exn t n =
  match find t n with
  | Some opcode -> opcode
  | None ->
      invalid_arg
        (Printf.sprintf "Instr_set.find_exn: no instruction %S in %s" n
           t.set_name)

let iter t f =
  for i = 0 to t.count - 1 do
    f t.instrs.(i)
  done

let max_quick_bytes t opcode =
  let instr = get t opcode in
  List.fold_left
    (fun acc q -> max acc (get t q).Instr.work_bytes)
    instr.Instr.work_bytes instr.Instr.quick_targets

(** A virtual-machine program: flat, sequential VM code, as produced by an
    interpreter front end (Section 2.1).

    Each slot holds one VM instruction with its inline immediate operands.
    Branch operands are absolute slot indices.  Slots are mutable because
    quickening (Section 5.4) rewrites instructions in place at run time. *)

type slot = { mutable opcode : int; mutable operands : int array }

type t = {
  name : string;
  iset : Instr_set.t;
  code : slot array;
  entry : int;  (** slot where execution starts *)
  entries : int list;
      (** all statically known entry points (program entry plus every
          function/method entry that indirect calls may reach) *)
}

val make :
  name:string ->
  iset:Instr_set.t ->
  code:slot array ->
  entry:int ->
  ?entries:int list ->
  unit ->
  t
(** Validates opcodes, operand counts and branch targets.
    @raise Invalid_argument when the code is malformed. *)

val length : t -> int
val instr_at : t -> int -> Instr.t
(** Descriptor of the instruction currently in the given slot. *)

val branch_targets : t -> int -> int list
(** Statically known control successors of the slot via taken branches
    (direct branch targets and direct call entries; indirect transfers
    contribute nothing). *)

val copy : t -> t
(** Deep copy, so one run's quickening does not leak into the next. *)

val slot_count_by_opcode : t -> int array
(** Static occurrence count of every opcode, indexed by opcode. *)

val pp_slot : t -> Format.formatter -> int -> unit
val pp : Format.formatter -> t -> unit
(** Disassembly listing of the whole program. *)

type branch_kind =
  | Straight
  | Cond_branch of int
  | Uncond_branch of int
  | Indirect_branch
  | Call of int
  | Indirect_call
  | Return
  | Stop

type t = {
  opcode : int;
  name : string;
  work_instrs : int;
  work_bytes : int;
  relocatable : bool;
  branch : branch_kind;
  operand_count : int;
  quickable : bool;
  quick_of : int option;
  mutable quick_targets : int list;
}

let is_basic_block_end t =
  match t.branch with
  | Straight -> false
  | Cond_branch _ | Uncond_branch _ | Indirect_branch | Call _ | Indirect_call
  | Return | Stop ->
      true

let can_fall_through t =
  match t.branch with
  | Straight | Cond_branch _ | Call _ | Indirect_call -> true
  | Uncond_branch _ | Indirect_branch | Return | Stop -> false

let pp ppf t =
  Format.fprintf ppf "%s(#%d, %d instrs, %dB%s%s)" t.name t.opcode
    t.work_instrs t.work_bytes
    (if t.relocatable then "" else ", non-reloc")
    (if t.quickable then ", quickable" else "")

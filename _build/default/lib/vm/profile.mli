(** Occurrence statistics used to choose static replicas and
    superinstructions (Section 5.1 and 7.1).

    A profile counts, per opcode and per instruction sequence, how often
    each appears.  Counting can be static (each program slot counts once, as
    used for the paper's JVM selection) or weighted by per-slot execution
    counts from a training run (as used for Gforth).  Sequences never cross
    basic-block boundaries and contain only [Straight], non-quickable
    instructions, since superinstructions of quickable originals would be
    executed at most once (Section 5.4). *)

type t

val empty : max_seq_len:int -> t

val max_seq_len : t -> int

val add_program : ?weights:int array -> t -> Program.t -> unit
(** Accumulate counts from a program.  [weights.(i)] is the execution count
    of slot [i]; omitted weights count each slot once (static profiling). *)

val opcode_count : t -> int -> int
val sequence_count : t -> int array -> int

val top_opcodes : t -> n:int -> int list
(** The [n] most frequent opcodes, most frequent first. *)

val top_sequences : t -> ?prefer_short:bool -> n:int -> unit -> int array list
(** The [n] best-scoring sequences (length at least 2).  With
    [prefer_short] the count of a sequence is divided by its length-1, the
    weighting the paper found most practical for the JVM: shorter sequences
    are more likely to reappear in other programs (Section 7.3). *)

type t = {
  max_seq_len : int;
  opcodes : (int, int ref) Hashtbl.t;
  sequences : (string, int ref * int array) Hashtbl.t;
      (* keyed by a string encoding; the value keeps the decoded sequence *)
}

let empty ~max_seq_len =
  if max_seq_len < 2 then invalid_arg "Profile.empty: max_seq_len must be >= 2";
  {
    max_seq_len;
    opcodes = Hashtbl.create 128;
    sequences = Hashtbl.create 1024;
  }

let max_seq_len t = t.max_seq_len

let key_of_sequence seq =
  String.concat "," (Array.to_list (Array.map string_of_int seq))

let bump table key make_payload weight =
  match Hashtbl.find_opt table key with
  | Some r -> fst r := !(fst r) + weight
  | None -> Hashtbl.replace table key (ref weight, make_payload ())

let bump_opcode t opcode weight =
  match Hashtbl.find_opt t.opcodes opcode with
  | Some r -> r := !r + weight
  | None -> Hashtbl.replace t.opcodes opcode (ref weight)

(* A slot may participate in a sequence when its instruction is plain
   straight-line code that will still exist after quickening. *)
let sequenceable (p : Program.t) i =
  let instr = Program.instr_at p i in
  (not instr.Instr.quickable)
  && match instr.Instr.branch with Instr.Straight -> true | _ -> false

let add_program ?weights t (p : Program.t) =
  let bb = Basic_block.analyze p in
  let weight_of i = match weights with None -> 1 | Some w -> w.(i) in
  Array.iter
    (fun (b : Basic_block.block) ->
      for i = b.Basic_block.start to b.Basic_block.stop do
        bump_opcode t p.Program.code.(i).Program.opcode (weight_of i);
        if sequenceable p i then
          (* All sequences starting at i, bounded by length, block end and
             the first non-sequenceable slot. *)
          let stop = min b.Basic_block.stop (i + t.max_seq_len - 1) in
          let rec extend j =
            if j <= stop && sequenceable p j then begin
              if j > i then begin
                let seq =
                  Array.init (j - i + 1) (fun k ->
                      p.Program.code.(i + k).Program.opcode)
                in
                bump t.sequences (key_of_sequence seq)
                  (fun () -> seq)
                  (weight_of i)
              end;
              extend (j + 1)
            end
          in
          extend i
      done)
    bb.Basic_block.blocks

let opcode_count t opcode =
  match Hashtbl.find_opt t.opcodes opcode with Some r -> !r | None -> 0

let sequence_count t seq =
  match Hashtbl.find_opt t.sequences (key_of_sequence seq) with
  | Some (r, _) -> !r
  | None -> 0

let top_opcodes t ~n =
  Hashtbl.fold (fun opcode r acc -> (opcode, !r) :: acc) t.opcodes []
  |> List.sort (fun (o1, c1) (o2, c2) ->
         match compare c2 c1 with 0 -> compare o1 o2 | c -> c)
  |> List.filteri (fun i _ -> i < n)
  |> List.map fst

let top_sequences t ?(prefer_short = false) ~n () =
  let score count seq =
    if prefer_short then float_of_int count /. float_of_int (Array.length seq - 1)
    else float_of_int count
  in
  Hashtbl.fold
    (fun _key (r, seq) acc -> (score !r seq, seq) :: acc)
    t.sequences []
  |> List.sort (fun (s1, q1) (s2, q2) ->
         match compare s2 s1 with 0 -> compare q1 q2 | c -> c)
  |> List.filteri (fun i _ -> i < n)
  |> List.map snd

type block = { id : int; start : int; stop : int }

type t = {
  blocks : block array;
  block_of_slot : int array;
  leader : bool array;
}

let analyze (p : Program.t) =
  let n = Program.length p in
  let leader = Array.make n false in
  if n > 0 then leader.(0) <- true;
  List.iter (fun e -> leader.(e) <- true) p.Program.entries;
  for i = 0 to n - 1 do
    let instr = Program.instr_at p i in
    List.iter (fun tgt -> leader.(tgt) <- true) (Program.branch_targets p i);
    if Instr.is_basic_block_end instr && i + 1 < n then leader.(i + 1) <- true
  done;
  let blocks = ref [] in
  let nblocks = ref 0 in
  let block_of_slot = Array.make n (-1) in
  let start = ref 0 in
  let flush stop =
    let id = !nblocks in
    blocks := { id; start = !start; stop } :: !blocks;
    for i = !start to stop do
      block_of_slot.(i) <- id
    done;
    incr nblocks;
    start := stop + 1
  in
  for i = 0 to n - 1 do
    if i + 1 >= n || leader.(i + 1) then flush i
  done;
  { blocks = Array.of_list (List.rev !blocks); block_of_slot; leader }

let slots b = List.init (b.stop - b.start + 1) (fun i -> b.start + i)

let opcode_key (p : Program.t) b =
  let buf = Buffer.create 32 in
  for i = b.start to b.stop do
    Buffer.add_string buf (string_of_int p.Program.code.(i).Program.opcode);
    Buffer.add_char buf ','
  done;
  Buffer.contents buf

let pp p ppf t =
  Array.iter
    (fun b ->
      Format.fprintf ppf "block %d: slots %d..%d:" b.id b.start b.stop;
      List.iter
        (fun i ->
          Format.fprintf ppf " %s" (Program.instr_at p i).Instr.name)
        (slots b);
      Format.pp_print_newline ppf ())
    t.blocks

type slot = { mutable opcode : int; mutable operands : int array }

type t = {
  name : string;
  iset : Instr_set.t;
  code : slot array;
  entry : int;
  entries : int list;
}

let validate t =
  let n = Array.length t.code in
  let check_slot_index what i =
    if i < 0 || i >= n then
      invalid_arg
        (Printf.sprintf "Program.make(%s): %s %d out of range [0,%d)" t.name
           what i n)
  in
  check_slot_index "entry" t.entry;
  List.iter (check_slot_index "entry point") t.entries;
  Array.iteri
    (fun i slot ->
      let instr =
        try Instr_set.get t.iset slot.opcode
        with Invalid_argument _ ->
          invalid_arg
            (Printf.sprintf "Program.make(%s): slot %d has bad opcode %d"
               t.name i slot.opcode)
      in
      if Array.length slot.operands <> instr.Instr.operand_count then
        invalid_arg
          (Printf.sprintf
             "Program.make(%s): slot %d (%s) has %d operands, expected %d"
             t.name i instr.Instr.name
             (Array.length slot.operands)
             instr.Instr.operand_count);
      match instr.Instr.branch with
      | Instr.Cond_branch k | Instr.Uncond_branch k | Instr.Call k ->
          check_slot_index
            (Printf.sprintf "branch target of slot %d (%s)" i instr.Instr.name)
            slot.operands.(k)
      | Instr.Straight | Instr.Indirect_branch | Instr.Indirect_call
      | Instr.Return | Instr.Stop ->
          ())
    t.code

let make ~name ~iset ~code ~entry ?(entries = []) () =
  let entries = if List.mem entry entries then entries else entry :: entries in
  let t = { name; iset; code; entry; entries } in
  validate t;
  t

let length t = Array.length t.code
let instr_at t i = Instr_set.get t.iset t.code.(i).opcode

let branch_targets t i =
  let slot = t.code.(i) in
  match (instr_at t i).Instr.branch with
  | Instr.Cond_branch k | Instr.Uncond_branch k | Instr.Call k ->
      [ slot.operands.(k) ]
  | Instr.Straight | Instr.Indirect_branch | Instr.Indirect_call
  | Instr.Return | Instr.Stop ->
      []

let copy t =
  {
    t with
    code =
      Array.map
        (fun s -> { opcode = s.opcode; operands = Array.copy s.operands })
        t.code;
  }

let slot_count_by_opcode t =
  let counts = Array.make (Instr_set.size t.iset) 0 in
  Array.iter (fun s -> counts.(s.opcode) <- counts.(s.opcode) + 1) t.code;
  counts

let pp_slot t ppf i =
  let slot = t.code.(i) in
  let instr = instr_at t i in
  Format.fprintf ppf "%4d: %-16s" i instr.Instr.name;
  Array.iter (fun op -> Format.fprintf ppf " %d" op) slot.operands

let pp ppf t =
  Format.fprintf ppf "program %s (%d slots, entry %d)@." t.name
    (Array.length t.code) t.entry;
  Array.iteri (fun i _ -> Format.fprintf ppf "%a@." (pp_slot t) i) t.code

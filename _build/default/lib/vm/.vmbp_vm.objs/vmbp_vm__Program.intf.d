lib/vm/program.mli: Format Instr Instr_set

lib/vm/control.mli: Format

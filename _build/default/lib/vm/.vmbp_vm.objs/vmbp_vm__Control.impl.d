lib/vm/control.ml: Format

lib/vm/instr.ml: Format

lib/vm/program.ml: Array Format Instr Instr_set List Printf

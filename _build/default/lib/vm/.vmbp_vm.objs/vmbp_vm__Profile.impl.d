lib/vm/profile.ml: Array Basic_block Hashtbl Instr List Program String

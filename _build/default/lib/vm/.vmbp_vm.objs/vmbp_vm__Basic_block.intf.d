lib/vm/basic_block.mli: Format Program

lib/vm/instr_set.ml: Array Hashtbl Instr List Printf

lib/vm/instr.mli: Format

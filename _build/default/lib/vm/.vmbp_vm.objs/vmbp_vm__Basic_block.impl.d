lib/vm/basic_block.ml: Array Buffer Format Instr List Program

lib/vm/instr_set.mli: Instr

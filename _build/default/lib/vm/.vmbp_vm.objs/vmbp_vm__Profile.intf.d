lib/vm/profile.mli: Program

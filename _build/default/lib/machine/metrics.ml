type t = {
  mutable vm_instrs : int;
  mutable native_instrs : int;
  mutable dispatches : int;
  mutable indirect_branches : int;
  mutable mispredicts : int;
  mutable vm_branch_mispredicts : int;
  mutable icache_fetches : int;
  mutable icache_misses : int;
  mutable code_bytes : int;
  mutable quickenings : int;
}

let create () =
  {
    vm_instrs = 0;
    native_instrs = 0;
    dispatches = 0;
    indirect_branches = 0;
    mispredicts = 0;
    vm_branch_mispredicts = 0;
    icache_fetches = 0;
    icache_misses = 0;
    code_bytes = 0;
    quickenings = 0;
  }

let reset m =
  m.vm_instrs <- 0;
  m.native_instrs <- 0;
  m.dispatches <- 0;
  m.indirect_branches <- 0;
  m.mispredicts <- 0;
  m.vm_branch_mispredicts <- 0;
  m.icache_fetches <- 0;
  m.icache_misses <- 0;
  m.code_bytes <- 0;
  m.quickenings <- 0

let copy m =
  {
    vm_instrs = m.vm_instrs;
    native_instrs = m.native_instrs;
    dispatches = m.dispatches;
    indirect_branches = m.indirect_branches;
    mispredicts = m.mispredicts;
    vm_branch_mispredicts = m.vm_branch_mispredicts;
    icache_fetches = m.icache_fetches;
    icache_misses = m.icache_misses;
    code_bytes = m.code_bytes;
    quickenings = m.quickenings;
  }

let add acc m =
  acc.vm_instrs <- acc.vm_instrs + m.vm_instrs;
  acc.native_instrs <- acc.native_instrs + m.native_instrs;
  acc.dispatches <- acc.dispatches + m.dispatches;
  acc.indirect_branches <- acc.indirect_branches + m.indirect_branches;
  acc.mispredicts <- acc.mispredicts + m.mispredicts;
  acc.vm_branch_mispredicts <- acc.vm_branch_mispredicts + m.vm_branch_mispredicts;
  acc.icache_fetches <- acc.icache_fetches + m.icache_fetches;
  acc.icache_misses <- acc.icache_misses + m.icache_misses;
  acc.code_bytes <- acc.code_bytes + m.code_bytes;
  acc.quickenings <- acc.quickenings + m.quickenings

let misprediction_rate m =
  if m.indirect_branches = 0 then 0.
  else float_of_int m.mispredicts /. float_of_int m.indirect_branches

let pp ppf m =
  Format.fprintf ppf
    "vm=%d native=%d dispatches=%d indirect=%d mispredict=%d (vmbr %d) \
     icache=%d/%d code=%dB quicken=%d"
    m.vm_instrs m.native_instrs m.dispatches m.indirect_branches m.mispredicts
    m.vm_branch_mispredicts m.icache_misses m.icache_fetches m.code_bytes
    m.quickenings

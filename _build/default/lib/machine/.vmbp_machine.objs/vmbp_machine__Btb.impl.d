lib/machine/btb.ml: Array Hashtbl

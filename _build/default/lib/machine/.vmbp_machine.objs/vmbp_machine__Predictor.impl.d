lib/machine/predictor.ml: Btb Case_block_table Two_level

lib/machine/icache.mli:

lib/machine/case_block_table.mli:

lib/machine/two_level.mli:

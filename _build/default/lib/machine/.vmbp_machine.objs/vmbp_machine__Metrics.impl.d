lib/machine/metrics.ml: Format

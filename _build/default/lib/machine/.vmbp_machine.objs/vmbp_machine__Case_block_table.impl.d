lib/machine/case_block_table.ml: Array

lib/machine/memory_layout.mli:

lib/machine/cpu_model.ml: Btb Icache List Metrics Predictor Two_level

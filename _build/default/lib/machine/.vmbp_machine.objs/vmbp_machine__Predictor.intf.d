lib/machine/predictor.mli: Btb Two_level

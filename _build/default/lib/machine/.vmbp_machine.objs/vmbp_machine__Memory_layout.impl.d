lib/machine/memory_layout.ml:

lib/machine/two_level.ml: Array

lib/machine/btb.mli:

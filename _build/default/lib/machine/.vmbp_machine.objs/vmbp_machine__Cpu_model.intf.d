lib/machine/cpu_model.mli: Icache Metrics Predictor

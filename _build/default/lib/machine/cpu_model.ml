type t = {
  name : string;
  mhz : int;
  ipc : float;
  mispredict_penalty : int;
  icache_miss_penalty : int;
  predictor : Predictor.kind;
  icache : Icache.config;
}

let celeron_800 =
  {
    name = "celeron-800";
    mhz = 800;
    ipc = 1.6;
    mispredict_penalty = 10;
    (* An L1 I-cache miss on the Celeron usually hits the on-die L2, a
       handful of cycles away. *)
    icache_miss_penalty = 5;
    predictor = Predictor.Btb (Btb.classic ~entries:512 ~associativity:4);
    icache =
      Icache.make_config ~size_bytes:(16 * 1024) ~line_bytes:32
        ~associativity:4;
  }

let pentium4_northwood =
  {
    name = "pentium4-northwood";
    mhz = 2260;
    ipc = 1.8;
    mispredict_penalty = 20;
    icache_miss_penalty = 27;
    predictor = Predictor.Btb (Btb.classic ~entries:4096 ~associativity:4);
    icache =
      (* The 12K-uop trace cache is modelled as a 96KB conventional cache
         (about 8 bytes of x86 code per cached uop). *)
      Icache.make_config ~size_bytes:(96 * 1024) ~line_bytes:64
        ~associativity:8;
  }

let pentium4_prescott =
  {
    pentium4_northwood with
    name = "pentium4-prescott";
    mhz = 3000;
    mispredict_penalty = 30;
  }

let pentium_m =
  {
    name = "pentium-m";
    mhz = 1600;
    ipc = 1.8;
    mispredict_penalty = 12;
    icache_miss_penalty = 12;
    predictor = Predictor.Two_level Two_level.default;
    icache =
      Icache.make_config ~size_bytes:(32 * 1024) ~line_bytes:64
        ~associativity:8;
  }

let ideal =
  {
    name = "ideal";
    mhz = 1000;
    ipc = 1.0;
    mispredict_penalty = 10;
    icache_miss_penalty = 0;
    predictor = Predictor.Btb Btb.ideal;
    icache = Icache.infinite;
  }

let all = [ celeron_800; pentium4_northwood; pentium4_prescott; pentium_m; ideal ]

let find name = List.find_opt (fun t -> t.name = name) all

let with_predictor t predictor = { t with predictor }

let cycles t (m : Metrics.t) =
  (float_of_int m.native_instrs /. t.ipc)
  +. float_of_int (m.mispredicts * t.mispredict_penalty)
  +. float_of_int (m.icache_misses * t.icache_miss_penalty)

let seconds t m = cycles t m /. (float_of_int t.mhz *. 1e6)

(** Simple bump allocator for simulated code addresses.

    Every executable copy of a VM instruction routine lives at a unique
    address in a flat simulated address space; the BTB keys on branch
    addresses inside these blocks and the I-cache maps them to lines, so the
    allocator's only obligations are uniqueness and realistic packing. *)

type t

val create : ?base:int -> ?align:int -> unit -> t
(** [base] defaults to 0x400000 (a typical text-segment start); [align] to
    16 bytes, matching common routine alignment. *)

val alloc : t -> bytes:int -> int
(** Reserve [bytes] and return the block's start address. *)

val used_bytes : t -> int
(** Total bytes allocated so far (including alignment padding). *)

val limit : t -> int
(** The next address that would be returned by [alloc]. *)

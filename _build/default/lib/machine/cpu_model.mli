(** CPU profiles used in the paper's evaluation (Section 6.2).

    A profile bundles the branch predictor configuration, the I-cache
    geometry, and the pipeline cost constants needed to turn event counts
    into cycles.  The two machines the paper reports on are the Celeron-800
    (small caches, 512-entry BTB, ~10-cycle misprediction penalty) and the
    Pentium 4 Northwood (trace cache, 4096-entry BTB, ~20-cycle penalty,
    ~27-cycle trace-cache miss penalty after Zhou and Ross 2004). *)

type t = {
  name : string;
  mhz : int;  (** nominal clock, only used for time displays *)
  ipc : float;  (** sustained native instructions per cycle, sans stalls *)
  mispredict_penalty : int;  (** cycles lost per mispredicted branch *)
  icache_miss_penalty : int;  (** cycles lost per I-cache line miss *)
  predictor : Predictor.kind;
  icache : Icache.config;
}

val celeron_800 : t
(** Pentium-III-class: 16KB I-cache, 512-entry BTB, 10-cycle penalty. *)

val pentium4_northwood : t
(** 12K-uop trace cache (modelled as 96KB, 8-way), 4096-entry BTB,
    20-cycle misprediction penalty, 27-cycle trace-cache miss penalty. *)

val pentium4_prescott : t
(** Like Northwood but with the ~30-cycle misprediction penalty of the
    Prescott core. *)

val pentium_m : t
(** Laptop processor with a two-level indirect predictor (Section 8). *)

val ideal : t
(** Unbounded BTB and infinite I-cache: isolates the pure prediction
    behaviour, as the paper's simulator experiments do. *)

val all : t list
(** Every built-in profile, for CLI listings. *)

val find : string -> t option
(** Look a profile up by [name]. *)

val with_predictor : t -> Predictor.kind -> t
(** Replace the predictor, e.g. for predictor-comparison ablations. *)

val cycles : t -> Metrics.t -> float
(** Pipeline cost model:
    [native_instrs / ipc + mispredicts * mispredict_penalty +
     icache_misses * icache_miss_penalty]. *)

val seconds : t -> Metrics.t -> float
(** [cycles] divided by the profile's clock rate. *)

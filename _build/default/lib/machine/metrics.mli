(** Event counters collected while simulating one interpreter run.

    These mirror the performance-monitoring counters used in Section 7.3 of
    the paper: retired native instructions, executed indirect branches,
    mispredicted indirect branches, instruction-cache misses, and the size of
    run-time generated code. *)

type t = {
  mutable vm_instrs : int;  (** executed VM-level instructions *)
  mutable native_instrs : int;  (** retired simulated native instructions *)
  mutable dispatches : int;  (** executed dispatch indirect branches *)
  mutable indirect_branches : int;
      (** all executed indirect branches (dispatches plus indirect calls) *)
  mutable mispredicts : int;  (** mispredicted indirect branches *)
  mutable vm_branch_mispredicts : int;
      (** the subset of [mispredicts] whose dispatching instruction was a
          VM-level control transfer (branch, call, return -- taken or not):
          the residue the paper attributes the post-replication
          mispredictions to *)
  mutable icache_fetches : int;  (** I-cache line accesses *)
  mutable icache_misses : int;  (** I-cache line misses *)
  mutable code_bytes : int;  (** bytes of code generated at run time *)
  mutable quickenings : int;  (** VM instructions rewritten by quickening *)
}

val create : unit -> t
(** A fresh, all-zero counter set. *)

val reset : t -> unit
(** Zero every counter in place. *)

val copy : t -> t
(** An independent snapshot. *)

val add : t -> t -> unit
(** [add acc m] accumulates [m] into [acc] field-wise. *)

val misprediction_rate : t -> float
(** Mispredicted fraction of executed indirect branches (0 when none ran). *)

val pp : Format.formatter -> t -> unit
(** Render every counter on one line, for logs and debug output. *)

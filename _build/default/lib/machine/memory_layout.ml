type t = { base : int; align : int; mutable next : int }

let create ?(base = 0x400000) ?(align = 16) () =
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Memory_layout.create: align must be a power of two";
  { base; align; next = base }

let round_up align n = (n + align - 1) land lnot (align - 1)

let alloc t ~bytes =
  if bytes < 0 then invalid_arg "Memory_layout.alloc: negative size";
  let addr = t.next in
  t.next <- round_up t.align (t.next + bytes);
  addr

let used_bytes t = t.next - t.base
let limit t = t.next

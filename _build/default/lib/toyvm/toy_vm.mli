(** A miniature VM for the paper's worked examples (Tables I-IV) and for
    property tests of the engine.

    The instruction set has a handful of generic straight-line operations
    that accumulate into a checksum (so tests can verify semantic
    preservation), direct and conditional branches, calls and returns, a
    non-relocatable operation, and a quickable operation with two quick
    versions. *)

type opcodes = {
  op_a : int;  (** generic operation, updates the checksum *)
  op_b : int;
  op_c : int;
  op_d : int;
  op_lit : int;  (** operand: value folded into the checksum *)
  op_goto : int;  (** operand: target slot *)
  op_loop : int;
      (** operands: counter index, target; decrements the counter and jumps
          to the target while it stays positive *)
  op_call : int;  (** operand: callee entry slot *)
  op_ret : int;
  op_halt : int;
  op_heavy : int;  (** non-relocatable operation *)
  op_quickme : int;
      (** quickable; resolves to [op_quick_even] or [op_quick_odd] depending
          on the parity of its operand, folding it into the checksum *)
  op_quick_even : int;
  op_quick_odd : int;
}

val iset : Vmbp_vm.Instr_set.t
val ops : opcodes

type state

val create_state : ?counters:int array -> unit -> state
(** [counters] seeds the loop counters (default: 16 counters of 10). *)

val checksum : state -> int
(** Deterministic function of every executed operation; equal checksums
    mean equal observable behaviour. *)

val exec : state -> Vmbp_core.Engine.exec
(** Semantics closure over the given state. *)

(** Program builders for the paper's example loops.  Loop iteration counts
    come from the state's counters: the outer loop uses counter 0, so
    [create_state ~counters:[| n; ... |] ()] runs each loop body [n]
    times. *)

val table1_loop : unit -> Vmbp_vm.Program.t
(** [A; B; A; loop] -- the motivating example of Tables I, II and IV. *)

val table3_loop : unit -> Vmbp_vm.Program.t
(** [A; B; A; B; A; loop] -- the bad-replication example of Table III. *)

val random_program : seed:int -> size:int -> Vmbp_vm.Program.t
(** A random but always-terminating program: straight-line operations,
    forward branches, calls to generated subroutines, quickable and
    non-relocatable instructions, wrapped in a counted loop. *)

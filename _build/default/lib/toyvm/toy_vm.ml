open Vmbp_vm

type opcodes = {
  op_a : int;
  op_b : int;
  op_c : int;
  op_d : int;
  op_lit : int;
  op_goto : int;
  op_loop : int;
  op_call : int;
  op_ret : int;
  op_halt : int;
  op_heavy : int;
  op_quickme : int;
  op_quick_even : int;
  op_quick_odd : int;
}

let iset = Instr_set.create ~name:"toy"

let ops =
  let reg = Instr_set.register iset in
  let op_a = reg ~name:"a" ~work_instrs:3 ~work_bytes:12 () in
  let op_b = reg ~name:"b" ~work_instrs:4 ~work_bytes:16 () in
  let op_c = reg ~name:"c" ~work_instrs:5 ~work_bytes:20 () in
  let op_d = reg ~name:"d" ~work_instrs:3 ~work_bytes:12 () in
  let op_lit = reg ~name:"lit" ~work_instrs:2 ~work_bytes:8 ~operand_count:1 () in
  let op_goto =
    reg ~name:"goto" ~work_instrs:2 ~work_bytes:8 ~operand_count:1
      ~branch:(Instr.Uncond_branch 0) ()
  in
  let op_loop =
    reg ~name:"loop" ~work_instrs:4 ~work_bytes:16 ~operand_count:2
      ~branch:(Instr.Cond_branch 1) ()
  in
  let op_call =
    reg ~name:"call" ~work_instrs:4 ~work_bytes:16 ~operand_count:1
      ~branch:(Instr.Call 0) ()
  in
  let op_ret =
    reg ~name:"ret" ~work_instrs:3 ~work_bytes:12 ~branch:Instr.Return ()
  in
  let op_halt =
    reg ~name:"halt" ~work_instrs:1 ~work_bytes:4 ~branch:Instr.Stop ()
  in
  let op_heavy =
    reg ~name:"heavy" ~work_instrs:20 ~work_bytes:80 ~relocatable:false ()
  in
  let op_quickme =
    reg ~name:"quickme" ~work_instrs:30 ~work_bytes:100 ~relocatable:false
      ~operand_count:1 ~quickable:true ()
  in
  let op_quick_even =
    reg ~name:"quick-even" ~work_instrs:3 ~work_bytes:12 ~operand_count:1
      ~quick_of:op_quickme ()
  in
  let op_quick_odd =
    reg ~name:"quick-odd" ~work_instrs:4 ~work_bytes:16 ~operand_count:1
      ~quick_of:op_quickme ()
  in
  Instr_set.set_quick_family iset ~original:op_quickme
    ~quicks:[ op_quick_even; op_quick_odd ];
  {
    op_a;
    op_b;
    op_c;
    op_d;
    op_lit;
    op_goto;
    op_loop;
    op_call;
    op_ret;
    op_halt;
    op_heavy;
    op_quickme;
    op_quick_even;
    op_quick_odd;
  }

type state = {
  mutable hash : int;
  counters : int array;
  rstack : int array;
  mutable rsp : int;
}

let create_state ?counters () =
  let counters =
    match counters with Some c -> Array.copy c | None -> Array.make 16 10
  in
  { hash = 0x811c9dc5; counters; rstack = Array.make 1024 0; rsp = 0 }

let checksum state = state.hash

let mix state k =
  state.hash <- ((state.hash * 16777619) lxor k) land 0x3FFFFFFFFFFFFFF

let exec state : Vmbp_core.Engine.exec =
 fun program pc ->
  let slot = program.Program.code.(pc) in
  let opcode = slot.Program.opcode in
  let operands = slot.Program.operands in
  if opcode = ops.op_a then (mix state 1; Control.Next)
  else if opcode = ops.op_b then (mix state 2; Control.Next)
  else if opcode = ops.op_c then (mix state 3; Control.Next)
  else if opcode = ops.op_d then (mix state 4; Control.Next)
  else if opcode = ops.op_lit then (mix state operands.(0); Control.Next)
  else if opcode = ops.op_goto then Control.Jump operands.(0)
  else if opcode = ops.op_loop then begin
    let k = operands.(0) in
    if state.counters.(k) > 0 then begin
      state.counters.(k) <- state.counters.(k) - 1;
      Control.Jump operands.(1)
    end
    else Control.Next
  end
  else if opcode = ops.op_call then begin
    if state.rsp >= Array.length state.rstack then Control.Trap "call overflow"
    else begin
      state.rstack.(state.rsp) <- pc + 1;
      state.rsp <- state.rsp + 1;
      Control.Jump operands.(0)
    end
  end
  else if opcode = ops.op_ret then begin
    if state.rsp = 0 then Control.Trap "return underflow"
    else begin
      state.rsp <- state.rsp - 1;
      Control.Jump state.rstack.(state.rsp)
    end
  end
  else if opcode = ops.op_halt then Control.Halt
  else if opcode = ops.op_heavy then (mix state 99; Control.Next)
  else if opcode = ops.op_quickme then begin
    let v = operands.(0) in
    let quick = if v mod 2 = 0 then ops.op_quick_even else ops.op_quick_odd in
    mix state ((2 * v) + if v mod 2 = 0 then 1 else 7);
    Control.Quicken
      { Control.new_opcode = quick; new_operands = [| v |]; after = Control.Next }
  end
  else if opcode = ops.op_quick_even then begin
    let v = operands.(0) in
    mix state ((2 * v) + 1);
    Control.Next
  end
  else if opcode = ops.op_quick_odd then begin
    let v = operands.(0) in
    mix state ((2 * v) + 7);
    Control.Next
  end
  else Control.Trap (Printf.sprintf "toy: unknown opcode %d" opcode)

let slot opcode operands = { Program.opcode; operands }

let program_of ~name ~code ~entry ?(entries = []) () =
  Program.make ~name ~iset ~code:(Array.of_list code) ~entry ~entries ()

let table1_loop () =
  (* label: A ; B ; A ; loop label *)
  program_of ~name:"table1"
    ~code:
      [
        slot ops.op_a [||];
        slot ops.op_b [||];
        slot ops.op_a [||];
        slot ops.op_loop [| 0; 0 |];
        slot ops.op_halt [||];
      ]
    ~entry:0 ()

let table3_loop () =
  program_of ~name:"table3"
    ~code:
      [
        slot ops.op_a [||];
        slot ops.op_b [||];
        slot ops.op_a [||];
        slot ops.op_b [||];
        slot ops.op_a [||];
        slot ops.op_loop [| 0; 0 |];
        slot ops.op_halt [||];
      ]
    ~entry:0 ()

let random_program ~seed ~size =
  let rng = Random.State.make [| seed |] in
  let code = ref [] in
  let len = ref 0 in
  let emit s =
    code := s :: !code;
    incr len
  in
  (* Subroutines first. *)
  let n_subs = 1 + Random.State.int rng 4 in
  let sub_entries = ref [] in
  for _ = 1 to n_subs do
    sub_entries := !len :: !sub_entries;
    let body = 2 + Random.State.int rng 5 in
    for _ = 1 to body do
      match Random.State.int rng 6 with
      | 0 -> emit (slot ops.op_a [||])
      | 1 -> emit (slot ops.op_b [||])
      | 2 -> emit (slot ops.op_c [||])
      | 3 -> emit (slot ops.op_d [||])
      | 4 -> emit (slot ops.op_lit [| Random.State.int rng 100 |])
      | _ -> emit (slot ops.op_heavy [||])
    done;
    emit (slot ops.op_ret [||])
  done;
  let subs = Array.of_list !sub_entries in
  (* Main: a counted loop around a random body. *)
  let main_entry = !len in
  let body_start = !len in
  let body_len = max 4 size in
  let i = ref 0 in
  while !i < body_len do
    (match Random.State.int rng 12 with
    | 0 | 1 | 2 -> emit (slot ops.op_a [||])
    | 3 | 4 -> emit (slot ops.op_b [||])
    | 5 -> emit (slot ops.op_c [||])
    | 6 -> emit (slot ops.op_d [||])
    | 7 -> emit (slot ops.op_lit [| Random.State.int rng 100 |])
    | 8 -> emit (slot ops.op_call [| subs.(Random.State.int rng n_subs) |])
    | 9 -> emit (slot ops.op_quickme [| Random.State.int rng 100 |])
    | 10 ->
        (* Forward skip over a couple of filler operations. *)
        let skip = 1 + Random.State.int rng 2 in
        emit (slot ops.op_goto [| !len + 1 + skip |]);
        for _ = 1 to skip do
          emit (slot ops.op_d [||]);
          incr i
        done
    | _ -> emit (slot ops.op_heavy [||]));
    incr i
  done;
  emit (slot ops.op_loop [| 0; body_start |]);
  emit (slot ops.op_halt [||]);
  Program.make ~name:(Printf.sprintf "toy-random-%d" seed) ~iset
    ~code:(Array.of_list (List.rev !code))
    ~entry:main_entry
    ~entries:(Array.to_list subs)
    ()

lib/toyvm/toy_vm.mli: Vmbp_core Vmbp_vm

lib/toyvm/toy_vm.ml: Array Control Instr Instr_set List Printf Program Random Vmbp_core Vmbp_vm

(* End-to-end workload tests: every benchmark of both VMs terminates
   cleanly, produces identical output under every interpreter technique,
   and satisfies the cross-variant structural invariants of Section 7.3 at
   workload scale. *)

open Vmbp_core
open Vmbp_machine

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let techniques =
  [
    Technique.switch;
    Technique.plain;
    Technique.static_repl ~n:100 ();
    Technique.static_super ~n:100 ();
    Technique.dynamic_repl;
    Technique.dynamic_super;
    Technique.dynamic_both;
    Technique.across_bb;
    Technique.with_static_super ~n:50 ();
    Technique.with_static_across_bb ~n:50 ();
    Technique.subroutine;
  ]

let test_reference_runs (w : Vmbp_workloads.t) () =
  let loaded = w.Vmbp_workloads.load ~scale:1 in
  let steps, trap, output = Vmbp_workloads.run_reference loaded in
  Alcotest.(check (option string)) "no trap" None trap;
  check_bool "does real work" true (steps > 50_000);
  check_bool "prints a checksum" true (String.length output > 0)

let test_all_techniques_agree (w : Vmbp_workloads.t) () =
  let loaded = w.Vmbp_workloads.load ~scale:1 in
  let _steps, _trap, reference = Vmbp_workloads.run_reference loaded in
  List.iter
    (fun technique ->
      let r =
        Vmbp_report.Runner.run ~cpu:Cpu_model.ideal ~technique w
      in
      check_string (Technique.name technique) reference
        r.Vmbp_report.Runner.output)
    techniques

let test_instruction_invariant (w : Vmbp_workloads.t) () =
  (* plain and dynamic repl retire the same native instructions and
     indirect branches (paper Section 7.3), even with quickening. *)
  let run t = Vmbp_report.Runner.run ~cpu:Cpu_model.ideal ~technique:t w in
  let plain = run Technique.plain in
  let drepl = run Technique.dynamic_repl in
  let m (r : Vmbp_report.Runner.run) = r.Vmbp_report.Runner.result.Engine.metrics in
  check_int "native instrs equal" (m plain).Metrics.native_instrs
    (m drepl).Metrics.native_instrs;
  check_int "indirect branches equal" (m plain).Metrics.indirect_branches
    (m drepl).Metrics.indirect_branches

let test_dispatch_reduction (w : Vmbp_workloads.t) () =
  let run t = Vmbp_report.Runner.run ~cpu:Cpu_model.ideal ~technique:t w in
  let d t =
    (run t).Vmbp_report.Runner.result.Engine.metrics.Metrics.dispatches
  in
  let plain = d Technique.plain in
  let super = d Technique.dynamic_super in
  let across = d Technique.across_bb in
  check_bool "super reduces dispatches" true (super < plain);
  check_bool "across-bb reduces further" true (across <= super)

let test_quickening_only_jvm () =
  List.iter
    (fun (w : Vmbp_workloads.t) ->
      let r =
        Vmbp_report.Runner.run ~cpu:Cpu_model.ideal ~technique:Technique.plain w
      in
      let q =
        r.Vmbp_report.Runner.result.Engine.metrics.Metrics.quickenings
      in
      match w.Vmbp_workloads.vm with
      | Vmbp_workloads.Forth -> check_int (w.Vmbp_workloads.name ^ " quickens") 0 q
      | Vmbp_workloads.Jvm ->
          check_bool (w.Vmbp_workloads.name ^ " quickens") true (q > 0))
    Vmbp_workloads.all

let test_training_profile_nonempty () =
  let p =
    Vmbp_workloads.training_profile ~vm:Vmbp_workloads.Forth ~target:"gray"
      ~scale:1 ()
  in
  check_bool "has sequences" true
    (Vmbp_vm.Profile.top_sequences p ~n:5 () <> []);
  let pj =
    Vmbp_workloads.training_profile ~vm:Vmbp_workloads.Jvm ~target:"compress"
      ~scale:1 ()
  in
  (* Leave-one-out profiles are taken after quickening, so quick opcodes
     appear and quickable originals are rare. *)
  check_bool "jvm profile has sequences" true
    (Vmbp_vm.Profile.top_sequences pj ~n:5 () <> [])

(* Golden outputs at scale 1: determinism regression net.  These values pin
   the current workload definitions; they change whenever a workload's code
   or the shared PRNG changes (then regenerate with dev/golden.ml). *)
let golden =
  [
    (("forth", "gray"), "797220510 ");
    (("forth", "bench-gc"), "152896530 ");
    (("forth", "tscp"), "1095 ");
    (("forth", "vmgen"), "5221202 ");
    (("forth", "cross"), "1027561392 ");
    (("forth", "brainless"), "992189 ");
    (("forth", "brew"), "521275142 ");
    (("jvm", "jack"), "694365439 ");
    (("jvm", "mpeg"), "999585489 ");
    (("jvm", "compress"), "982443953 ");
    (("jvm", "javac"), "986775392 ");
    (("jvm", "jess"), "384281757 ");
    (("jvm", "db"), "189618 ");
    (("jvm", "mtrt"), "920058789 ");
  ]

let test_golden_outputs () =
  List.iter
    (fun (w : Vmbp_workloads.t) ->
      let key =
        (Vmbp_workloads.vm_name w.Vmbp_workloads.vm, w.Vmbp_workloads.name)
      in
      let expected = List.assoc key golden in
      let loaded = w.Vmbp_workloads.load ~scale:1 in
      let _, _, out = Vmbp_workloads.run_reference loaded in
      check_string (fst key ^ "/" ^ snd key) expected out)
    Vmbp_workloads.all

let per_workload name f =
  List.map
    (fun (w : Vmbp_workloads.t) ->
      Alcotest.test_case
        (Printf.sprintf "%s/%s %s"
           (Vmbp_workloads.vm_name w.Vmbp_workloads.vm)
           w.Vmbp_workloads.name name)
        `Slow (f w))
    Vmbp_workloads.all

let () =
  Alcotest.run "workloads"
    [
      ("reference", per_workload "runs" test_reference_runs);
      ( "golden",
        [ Alcotest.test_case "scale-1 outputs pinned" `Slow test_golden_outputs ] );
      ("equivalence", per_workload "techniques agree" test_all_techniques_agree);
      ("invariants", per_workload "instruction invariant" test_instruction_invariant);
      ("dispatch", per_workload "dispatch reduction" test_dispatch_reduction);
      ( "quickening",
        [
          Alcotest.test_case "only the JVM quickens" `Slow
            test_quickening_only_jvm;
          Alcotest.test_case "training profiles" `Slow
            test_training_profile_nonempty;
        ] );
    ]

(* Forth front-end and semantics tests. *)

open Vmbp_core
module Program = Vmbp_vm.Program
module F = Vmbp_forth

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* Compile and run functionally (no hardware simulation). *)
let run ?(fuel = 10_000_000) source =
  let program = F.Compiler.compile ~name:"test" source in
  let state = F.State.create () in
  let _steps, trap =
    Engine.run_functional ~program ~exec:(F.Instruction_set.exec state) ~fuel ()
  in
  (match trap with
  | Some msg -> Alcotest.failf "trapped: %s" msg
  | None -> ());
  F.State.output state

let expect source expected () = check_string source expected (run source)

let expect_error source () =
  match F.Compiler.compile ~name:"bad" source with
  | exception F.Compiler.Error _ -> ()
  | _ -> Alcotest.failf "expected a compile error for %S" source

let expect_trap source expected () =
  let program = F.Compiler.compile ~name:"trap" source in
  let state = F.State.create () in
  let _steps, trap =
    Engine.run_functional ~program ~exec:(F.Instruction_set.exec state)
      ~fuel:1_000_000 ()
  in
  match trap with
  | Some msg ->
      check_bool
        (Printf.sprintf "trap %S contains %S" msg expected)
        true
        (let re = expected in
         let len = String.length re in
         let n = String.length msg in
         let rec find i = i + len <= n && (String.sub msg i len = re || find (i + 1)) in
         find 0)
  | None -> Alcotest.failf "expected a trap for %S" source

(* ------------------------------------------------------------------ *)

let basics =
  [
    ("arithmetic", expect "1 2 + 4 * ." "12 ");
    ("stack ops", expect "1 2 3 rot . . ." "1 3 2 ");
    ("swap over", expect "10 20 swap over . . ." "20 10 20 ");
    ("division", expect "17 5 / . 17 5 mod ." "3 2 ");
    ("negative mod", expect "-7 3 mod ." "2 ");
    ("comparisons", expect "3 4 < . 4 4 <= . 5 4 > ." "-1 -1 -1 ");
    ("logic", expect "12 10 and . 12 10 or . 12 10 xor ." "8 14 6 ");
    ("shifts", expect "1 4 lshift . 256 4 rshift ." "16 16 ");
    ("min max abs", expect "3 7 min . 3 7 max . -9 abs ." "3 7 9 ");
    ("char and emit", expect "char H emit char i emit" "Hi");
    ("dot-quote", expect ".\" hello world\"" "hello world");
    ("cr", expect "1 . cr 2 ." "1 \n2 ");
  ]

let definitions =
  [
    ("colon word", expect ": sq dup * ; 7 sq ." "49 ");
    ("nested calls", expect ": sq dup * ; : quad sq sq ; 2 quad ." "16 ");
    ( "recursion",
      expect ": fib dup 2 < if exit then dup 1- recurse swap 2 - recurse + ; \
              10 fib ." "55 " );
    ("exit", expect ": f 1 . exit 2 . ; f" "1 ");
    ("tick and execute", expect ": a 42 . ; ' a execute" "42 ");
    ( "execute chooses at runtime",
      expect
        ": even 100 . ; : odd 200 . ; : pick' 2 mod 0= if ' even else ' odd \
         then ; 7 pick' execute 8 pick' execute"
        "200 100 " );
  ]

let control =
  [
    ("if taken", expect "1 if 10 . then" "10 ");
    ("if not taken", expect "0 if 10 . then 20 ." "20 ");
    ("if else", expect ": sign 0< if -1 else 1 then ; -5 sign . 5 sign ." "-1 1 ");
    ("begin until", expect ": count 5 begin dup . 1- dup 0= until drop ; count"
      "5 4 3 2 1 ");
    ( "begin while repeat",
      expect ": count 0 begin dup 5 < while dup . 1+ repeat drop ; count"
        "0 1 2 3 4 " );
    ("do loop", expect ": sum 0 5 0 do i + loop . ; sum" "10 ");
    ("do loop index", expect "3 0 do i . loop" "0 1 2 ");
    ("nested do", expect "2 0 do 2 0 do j 10 * i + . loop loop" "0 1 10 11 ");
    ("+loop", expect "10 0 do i . 3 +loop" "0 3 6 9 ");
    ("leave", expect "10 0 do i dup . 2 = if leave then loop" "0 1 2 ");
    ( "leave leaves cleanly",
      expect ": f 10 0 do i 3 = if leave then loop 99 . ; f" "99 " );
  ]

let case_tests =
  [
    ( "case basic",
      expect ": f case 1 of 10 . endof 2 of 20 . endof 99 . endcase ; 1 f 2 f"
        "10 20 " );
    ( "case default",
      expect ": f case 1 of 10 . endof 2 of 20 . endof dup . endcase ; 7 f"
        "7 " );
    ( "case consumes selector",
      expect ": f case 1 of endof endcase depth . ; 1 f 9 f" "0 0 " );
    ( "case in loop",
      expect
        ": f 5 0 do i case 0 of 100 . endof 2 of 200 . endof endcase loop ; f"
        "100 200 " );
    ( "nested case",
      expect
        ": g case 5 of 15 . endof 42 . endcase ; : f case 1 of 5 g endof 2 \
         of 20 . endof endcase ; 1 f 2 f"
        "15 20 " );
    ("of outside case", expect_error ": f 1 of endof endcase ;");
    ("endcase without case", expect_error ": f endcase ;");
    ("endof without of", expect_error ": f case endof endcase ;");
    ("unterminated case", expect_error ": f case 1 of endof ;");
  ]

let memory =
  [
    ("variable", expect "variable x 42 x ! x @ ." "42 ");
    ("plus-store", expect "variable x 10 x ! 5 x +! x @ ." "15 ");
    ("two variables", expect "variable a variable b 1 a ! 2 b ! a @ b @ + ." "3 ");
    ("constant", expect "42 constant answer answer ." "42 ");
    ( "array",
      expect
        "array tbl 10 : fill 10 0 do i i i * swap tbl + ! loop ; fill 7 tbl \
         + @ ." "49 " );
    ("allot and here", expect "here 3 allot here swap - ." "3 ");
  ]

let errors =
  [
    ("unknown word", expect_error "frobnicate");
    ("unterminated if", expect_error ": f 1 if ;");
    ("else without if", expect_error ": f else then ;");
    ("loop without do", expect_error ": f loop ;");
    ("nested colon", expect_error ": a : b ; ;");
    ("direct lit", expect_error "lit");
    ("tick unknown", expect_error "' nope");
    ("stack underflow", expect_trap "+" "underflow");
    ("division by zero", expect_trap "1 0 /" "division");
    ("return underflow", expect_trap "exit" "underflow");
  ]

(* ------------------------------------------------------------------ *)
(* One focused test per primitive: the full instruction-set battery. *)

let primitive_battery =
  [
    ("lit", "42 .", "42 ");
    ("@ and !", "variable v 7 v ! v @ .", "7 ");
    ("+!", "variable v 40 v ! 2 v +! v @ .", "42 ");
    ("allot", "here 5 allot here swap - .", "5 ");
    ("here", "here here = .", "-1 ");
    ("dup", "3 dup + .", "6 ");
    ("drop", "1 2 drop .", "1 ");
    ("swap", "1 2 swap . .", "1 2 ");
    ("over", "1 2 over . . .", "1 2 1 ");
    ("rot", "1 2 3 rot . . .", "1 3 2 ");
    ("-rot", "1 2 3 -rot . . .", "2 1 3 ");
    ("nip", "1 2 nip . depth .", "2 0 ");
    ("tuck", "1 2 tuck . . .", "2 1 2 ");
    ("pick", "10 20 30 2 pick .", "10 ");
    ("2dup", "1 2 2dup . . . .", "2 1 2 1 ");
    ("2drop", "1 2 3 2drop .", "1 ");
    ("?dup nonzero", "5 ?dup . .", "5 5 ");
    ("?dup zero", "0 ?dup depth . .", "1 0 ");
    ("depth", "1 2 3 depth .", "3 ");
    (">r r> r@", "9 >r r@ r> + .", "18 ");
    ("plus", "2 3 + .", "5 ");
    ("minus", "7 3 - .", "4 ");
    ("times", "6 7 * .", "42 ");
    ("divide", "-7 2 / .", "-3 ");
    ("mod", "-7 2 mod .", "1 ");
    ("1+ 1-", "5 1+ . 5 1- .", "6 4 ");
    ("2* 2/", "5 2* . -5 2/ .", "10 -3 ");
    ("negate", "5 negate .", "-5 ");
    ("abs", "-5 abs . 5 abs .", "5 5 ");
    ("min max", "2 9 min . 2 9 max .", "2 9 ");
    ("and or xor", "6 3 and . 6 3 or . 6 3 xor .", "2 7 5 ");
    ("invert", "0 invert .", "-1 ");
    ("lshift rshift", "3 2 lshift . 12 2 rshift .", "12 3 ");
    ("equals", "3 3 = . 3 4 = .", "-1 0 ");
    ("not-equals", "3 3 <> . 3 4 <> .", "0 -1 ");
    ("less", "3 4 < . 4 3 < .", "-1 0 ");
    ("greater", "4 3 > . 3 4 > .", "-1 0 ");
    ("le ge", "3 3 <= . 3 3 >= .", "-1 -1 ");
    ("0= 0< 0>", "0 0= . -1 0< . 1 0> .", "-1 -1 -1 ");
    ("branch via else", "0 if 1 . else 2 . then", "2 ");
    ("?branch via if", "1 if 1 . then", "1 ");
    ("call/exit via colon", ": f 5 . ; f", "5 ");
    ("execute", ": f 9 . ; ' f execute", "9 ");
    ("(do)/(loop)/i", "3 0 do i . loop", "0 1 2 ");
    ("(+loop)", "9 0 do i . 4 +loop", "0 4 8 ");
    ("j", "2 0 do 1 0 do j . loop loop", "0 1 ");
    ("unloop+exit", ": f 5 0 do i 2 = if unloop exit then i . loop ; f", "0 1 ");
    ("emit", "72 emit 105 emit", "Hi");
    ("dot", "123 .", "123 ");
    ("cr", "cr", "\n");
    ("type", "variable s 72 s ! s @ emit", "H");
    ("noop", "noop 1 .", "1 ");
  ]

let primitive_tests =
  List.map
    (fun (name, source, expected) ->
      (name, fun () -> check_string source expected (run source)))
    primitive_battery

(* ------------------------------------------------------------------ *)
(* Cross-technique semantic preservation for real Forth programs. *)

let sieve_source =
  {|
array flags 400
: clear-flags 400 0 do 1 i flags + ! loop ;
: sieve
  clear-flags
  0
  400 2 do
    i flags + @ if
      1+
      400 i do 0 i flags + ! j +loop
    then
  loop
  . ;
sieve
|}

let gcd_source =
  {|
: gcd begin dup while tuck mod repeat drop ;
: try 2dup gcd . ;
1071 462 try 2drop
48 36 try 2drop
17 5 try 2drop
|}

let run_with_technique program technique =
  let config =
    Config.make ~cpu:Vmbp_machine.Cpu_model.ideal technique
  in
  let layout = Config.build_layout config ~program in
  let state = F.State.create () in
  let result =
    Engine.run ~config ~layout ~exec:(F.Instruction_set.exec state)
      ~fuel:20_000_000 ()
  in
  Alcotest.(check (option string))
    (Technique.name technique ^ " trap")
    None result.Engine.trapped;
  F.State.output state

let test_cross_technique source () =
  let program = F.Compiler.compile ~name:"xt" source in
  let reference = run source in
  List.iter
    (fun technique ->
      check_string (Technique.name technique) reference
        (run_with_technique program technique))
    [
      Technique.switch;
      Technique.plain;
      Technique.dynamic_repl;
      Technique.dynamic_super;
      Technique.dynamic_both;
      Technique.across_bb;
    ]

let test_word_entries () =
  let unit_ = F.Compiler.compile_unit ~name:"w" ": a 1 . ; : b 2 . ; a b" in
  check_bool "a present" true (List.mem_assoc "a" unit_.F.Compiler.words);
  check_bool "b present" true (List.mem_assoc "b" unit_.F.Compiler.words);
  (* Word entries are program entries, so [execute] targets are leaders. *)
  let entries = unit_.F.Compiler.program.Program.entries in
  List.iter
    (fun (_, e) -> check_bool "entry registered" true (List.mem e entries))
    unit_.F.Compiler.words

(* ------------------------------------------------------------------ *)
(* Property: random arithmetic expressions rendered as Forth source
   compute the same value as native OCaml evaluation. *)

type aexp =
  | Lit of int
  | Add of aexp * aexp
  | Sub of aexp * aexp
  | Mul of aexp * aexp
  | Neg of aexp
  | Min of aexp * aexp
  | Max of aexp * aexp

let rec forth_of_aexp = function
  | Lit v -> string_of_int v
  | Add (a, b) -> Printf.sprintf "%s %s +" (forth_of_aexp a) (forth_of_aexp b)
  | Sub (a, b) -> Printf.sprintf "%s %s -" (forth_of_aexp a) (forth_of_aexp b)
  | Mul (a, b) ->
      Printf.sprintf "%s %s * 1000003 mod" (forth_of_aexp a) (forth_of_aexp b)
  | Neg a -> Printf.sprintf "%s negate" (forth_of_aexp a)
  | Min (a, b) -> Printf.sprintf "%s %s min" (forth_of_aexp a) (forth_of_aexp b)
  | Max (a, b) -> Printf.sprintf "%s %s max" (forth_of_aexp a) (forth_of_aexp b)

let gen_aexp =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then map (fun v -> Lit v) (int_range (-50) 50)
           else
             let sub = self (n / 2) in
             oneof
               [
                 map (fun v -> Lit v) (int_range (-50) 50);
                 map2 (fun a b -> Add (a, b)) sub sub;
                 map2 (fun a b -> Sub (a, b)) sub sub;
                 map2 (fun a b -> Mul (a, b)) sub sub;
                 map (fun a -> Neg a) sub;
                 map2 (fun a b -> Min (a, b)) sub sub;
                 map2 (fun a b -> Max (a, b)) sub sub;
               ]))

let prop_forth_arith_agrees =
  QCheck.Test.make ~name:"compiled Forth arithmetic equals OCaml evaluation"
    ~count:300
    (QCheck.make gen_aexp)
    (fun e ->
      (* Reference evaluation with the same non-negative [mod] semantics as
         the Forth primitive. *)
      let rec eval' = function
        | Lit v -> v
        | Add (a, b) -> eval' a + eval' b
        | Sub (a, b) -> eval' a - eval' b
        | Mul (a, b) ->
            let m = eval' a * eval' b mod 1_000_003 in
            ((m mod 1_000_003) + 1_000_003) mod 1_000_003
        | Neg a -> -eval' a
        | Min (a, b) -> min (eval' a) (eval' b)
        | Max (a, b) -> max (eval' a) (eval' b)
      in
      let expected = eval' e in
      let out = run (forth_of_aexp e ^ " .") in
      out = string_of_int expected ^ " ")

let tc (name, f) = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "forth"
    [
      ("basics", List.map tc basics);
      ("primitives", List.map tc primitive_tests);
      ("definitions", List.map tc definitions);
      ("control", List.map tc control);
      ("case", List.map tc case_tests);
      ("memory", List.map tc memory);
      ("errors", List.map tc errors);
      ( "techniques",
        [
          Alcotest.test_case "sieve across techniques" `Quick
            (test_cross_technique sieve_source);
          Alcotest.test_case "gcd across techniques" `Quick
            (test_cross_technique gcd_source);
          Alcotest.test_case "word entries" `Quick test_word_entries;
          QCheck_alcotest.to_alcotest prop_forth_arith_agrees;
        ] );
    ]

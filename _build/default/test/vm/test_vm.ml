(* Unit and property tests for the generic VM substrate: instruction sets,
   program validation, basic-block analysis and profiles. *)

open Vmbp_vm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A tiny private instruction set for structural tests. *)
let make_iset () =
  let iset = Instr_set.create ~name:"test" in
  let nop = Instr_set.register iset ~name:"nop" ~work_instrs:2 ~work_bytes:6 () in
  let lit =
    Instr_set.register iset ~name:"lit" ~work_instrs:3 ~work_bytes:9
      ~operand_count:1 ()
  in
  let jmp =
    Instr_set.register iset ~name:"jmp" ~work_instrs:3 ~work_bytes:9
      ~operand_count:1 ~branch:(Instr.Uncond_branch 0) ()
  in
  let beq =
    Instr_set.register iset ~name:"beq" ~work_instrs:5 ~work_bytes:15
      ~operand_count:1 ~branch:(Instr.Cond_branch 0) ()
  in
  let call =
    Instr_set.register iset ~name:"call" ~work_instrs:5 ~work_bytes:15
      ~operand_count:1 ~branch:(Instr.Call 0) ()
  in
  let ret =
    Instr_set.register iset ~name:"ret" ~work_instrs:4 ~work_bytes:12
      ~branch:Instr.Return ()
  in
  let stop =
    Instr_set.register iset ~name:"stop" ~work_instrs:1 ~work_bytes:3
      ~branch:Instr.Stop ()
  in
  (iset, nop, lit, jmp, beq, call, ret, stop)

let slot opcode operands = { Program.opcode; operands }

(* ------------------------------------------------------------------ *)
(* Instr_set *)

let test_iset_registration () =
  let iset, nop, lit, _, _, _, _, _ = make_iset () in
  check_int "size" 7 (Instr_set.size iset);
  check_int "opcodes sequential" 0 nop;
  check_int "lookup by name" lit (Instr_set.find_exn iset "lit");
  check_bool "missing name" true (Instr_set.find iset "nosuch" = None);
  check_bool "descriptor round-trip" true
    ((Instr_set.get iset nop).Instr.name = "nop")

let test_iset_duplicate_name () =
  let iset = Instr_set.create ~name:"dup-test" in
  let _ = Instr_set.register iset ~name:"x" ~work_instrs:1 ~work_bytes:3 () in
  match Instr_set.register iset ~name:"x" ~work_instrs:1 ~work_bytes:3 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate registration must fail"

let test_quick_family () =
  let iset = Instr_set.create ~name:"quick-test" in
  let orig =
    Instr_set.register iset ~name:"orig" ~work_instrs:30 ~work_bytes:90
      ~quickable:true ()
  in
  let q1 =
    Instr_set.register iset ~name:"q1" ~work_instrs:3 ~work_bytes:9
      ~quick_of:orig ()
  in
  let q2 =
    Instr_set.register iset ~name:"q2" ~work_instrs:5 ~work_bytes:40
      ~quick_of:orig ()
  in
  Instr_set.set_quick_family iset ~original:orig ~quicks:[ q1; q2 ];
  (* gap must fit the largest of {original, quick versions} *)
  check_int "max quick bytes" 90 (Instr_set.max_quick_bytes iset orig);
  check_bool "non-quickable rejected" true
    (match Instr_set.set_quick_family iset ~original:q1 ~quicks:[] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Program validation *)

let test_program_validation () =
  let iset, nop, lit, jmp, _, _, _, stop = make_iset () in
  let ok =
    Program.make ~name:"ok" ~iset
      ~code:[| slot nop [||]; slot lit [| 5 |]; slot stop [||] |]
      ~entry:0 ()
  in
  check_int "length" 3 (Program.length ok);
  let bad_target () =
    Program.make ~name:"bad" ~iset
      ~code:[| slot jmp [| 9 |]; slot stop [||] |]
      ~entry:0 ()
  in
  check_bool "branch target out of range" true
    (match bad_target () with exception Invalid_argument _ -> true | _ -> false);
  let bad_arity () =
    Program.make ~name:"bad" ~iset
      ~code:[| slot lit [||]; slot stop [||] |]
      ~entry:0 ()
  in
  check_bool "operand arity" true
    (match bad_arity () with exception Invalid_argument _ -> true | _ -> false);
  let bad_opcode () =
    Program.make ~name:"bad" ~iset ~code:[| slot 999 [||] |] ~entry:0 ()
  in
  check_bool "unknown opcode" true
    (match bad_opcode () with exception Invalid_argument _ -> true | _ -> false);
  let bad_entry () =
    Program.make ~name:"bad" ~iset ~code:[| slot stop [||] |] ~entry:5 ()
  in
  check_bool "entry out of range" true
    (match bad_entry () with exception Invalid_argument _ -> true | _ -> false)

let test_program_copy_isolation () =
  let iset, nop, _, _, _, _, _, stop = make_iset () in
  let p =
    Program.make ~name:"copy" ~iset
      ~code:[| slot nop [||]; slot stop [||] |]
      ~entry:0 ()
  in
  let q = Program.copy p in
  q.Program.code.(0).Program.opcode <- stop;
  check_int "original untouched" nop p.Program.code.(0).Program.opcode

let test_branch_targets () =
  let iset, nop, _, jmp, beq, call, ret, stop = make_iset () in
  let p =
    Program.make ~name:"targets" ~iset
      ~code:
        [|
          slot jmp [| 3 |]; slot beq [| 0 |]; slot call [| 4 |];
          slot ret [||]; slot nop [||]; slot stop [||];
        |]
      ~entry:0 ()
  in
  Alcotest.(check (list int)) "jmp" [ 3 ] (Program.branch_targets p 0);
  Alcotest.(check (list int)) "beq" [ 0 ] (Program.branch_targets p 1);
  Alcotest.(check (list int)) "call" [ 4 ] (Program.branch_targets p 2);
  Alcotest.(check (list int)) "ret" [] (Program.branch_targets p 3)

(* ------------------------------------------------------------------ *)
(* Basic blocks *)

let test_basic_blocks () =
  let iset, nop, _, _, beq, _, _, stop = make_iset () in
  (* 0:nop 1:beq->0 2:nop 3:nop 4:stop  with an extra entry at 3 *)
  let p =
    Program.make ~name:"bb" ~iset
      ~code:
        [|
          slot nop [||]; slot beq [| 0 |]; slot nop [||]; slot nop [||];
          slot stop [||];
        |]
      ~entry:0 ~entries:[ 3 ] ()
  in
  let bb = Basic_block.analyze p in
  (* leaders: 0 (entry+target), 2 (after branch), 3 (extra entry) *)
  check_bool "0 leader" true bb.Basic_block.leader.(0);
  check_bool "1 not leader" false bb.Basic_block.leader.(1);
  check_bool "2 leader" true bb.Basic_block.leader.(2);
  check_bool "3 leader" true bb.Basic_block.leader.(3);
  check_int "block count" 3 (Array.length bb.Basic_block.blocks);
  check_int "slot 1 in block 0" 0 bb.Basic_block.block_of_slot.(1);
  check_int "slot 4 in block 2" 2 bb.Basic_block.block_of_slot.(4)

let prop_blocks_partition =
  QCheck.Test.make ~name:"basic blocks partition the program" ~count:100
    QCheck.(int_bound 1000)
    (fun seed ->
      let p = Vmbp_toyvm.Toy_vm.random_program ~seed ~size:30 in
      let bb = Basic_block.analyze p in
      let n = Program.length p in
      let covered = Array.make n 0 in
      Array.iter
        (fun (b : Basic_block.block) ->
          for i = b.Basic_block.start to b.Basic_block.stop do
            covered.(i) <- covered.(i) + 1
          done)
        bb.Basic_block.blocks;
      Array.for_all (fun c -> c = 1) covered
      && Array.for_all
           (fun (b : Basic_block.block) ->
             (* leaders only at block starts *)
             let ok = ref bb.Basic_block.leader.(b.Basic_block.start) in
             for i = b.Basic_block.start + 1 to b.Basic_block.stop do
               if bb.Basic_block.leader.(i) then ok := false
             done;
             !ok)
           bb.Basic_block.blocks)

let prop_block_interiors_straight =
  QCheck.Test.make
    ~name:"only the last slot of a block can end a basic block" ~count:100
    QCheck.(int_bound 1000)
    (fun seed ->
      let p = Vmbp_toyvm.Toy_vm.random_program ~seed ~size:30 in
      let bb = Basic_block.analyze p in
      Array.for_all
        (fun (b : Basic_block.block) ->
          let ok = ref true in
          for i = b.Basic_block.start to b.Basic_block.stop - 1 do
            if Instr.is_basic_block_end (Program.instr_at p i) then ok := false
          done;
          !ok)
        bb.Basic_block.blocks)

(* ------------------------------------------------------------------ *)
(* Profiles *)

let test_profile_weighted () =
  let iset, nop, lit, _, _, _, _, stop = make_iset () in
  let p =
    Program.make ~name:"prof" ~iset
      ~code:[| slot nop [||]; slot lit [| 1 |]; slot stop [||] |]
      ~entry:0 ()
  in
  let prof = Profile.empty ~max_seq_len:3 in
  Profile.add_program ~weights:[| 10; 10; 1 |] prof p;
  check_int "weighted opcode count" 10 (Profile.opcode_count prof nop);
  check_int "weighted sequence count" 10
    (Profile.sequence_count prof [| nop; lit |]);
  (* top_sequences must rank by weight *)
  match Profile.top_sequences prof ~n:1 () with
  | [ seq ] -> Alcotest.(check (array int)) "top" [| nop; lit |] seq
  | _ -> Alcotest.fail "expected one sequence"

let test_profile_prefer_short () =
  let iset, nop, lit, _, _, _, _, stop = make_iset () in
  (* nop nop nop lit stop: [nop nop] occurs twice, [nop nop nop] once *)
  let p =
    Program.make ~name:"short" ~iset
      ~code:
        [|
          slot nop [||]; slot nop [||]; slot nop [||]; slot lit [| 0 |];
          slot stop [||];
        |]
      ~entry:0 ()
  in
  let prof = Profile.empty ~max_seq_len:4 in
  Profile.add_program prof p;
  check_int "pair counted twice" 2 (Profile.sequence_count prof [| nop; nop |]);
  match Profile.top_sequences prof ~prefer_short:true ~n:1 () with
  | [ seq ] -> check_int "short preferred" 2 (Array.length seq)
  | _ -> Alcotest.fail "expected one sequence"

let prop_profile_counts_consistent =
  QCheck.Test.make
    ~name:"profile opcode counts equal static occurrence counts" ~count:50
    QCheck.(int_bound 1000)
    (fun seed ->
      let p = Vmbp_toyvm.Toy_vm.random_program ~seed ~size:25 in
      let prof = Profile.empty ~max_seq_len:3 in
      Profile.add_program prof p;
      let static = Program.slot_count_by_opcode p in
      Array.for_all
        (fun i -> Profile.opcode_count prof i = static.(i))
        (Array.init (Array.length static) (fun i -> i)))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "vm"
    [
      ( "instr-set",
        [
          Alcotest.test_case "registration" `Quick test_iset_registration;
          Alcotest.test_case "duplicate names" `Quick test_iset_duplicate_name;
          Alcotest.test_case "quick families" `Quick test_quick_family;
        ] );
      ( "program",
        [
          Alcotest.test_case "validation" `Quick test_program_validation;
          Alcotest.test_case "copy isolation" `Quick test_program_copy_isolation;
          Alcotest.test_case "branch targets" `Quick test_branch_targets;
        ] );
      ( "basic-blocks",
        [
          Alcotest.test_case "leaders and blocks" `Quick test_basic_blocks;
          qt prop_blocks_partition;
          qt prop_block_interiors_straight;
        ] );
      ( "profile",
        [
          Alcotest.test_case "weighted counting" `Quick test_profile_weighted;
          Alcotest.test_case "prefer-short ranking" `Quick
            test_profile_prefer_short;
          qt prop_profile_counts_consistent;
        ] );
    ]

(* Mini-JVM tests: MiniJava compilation, object model, quickening, and
   cross-technique semantic preservation. *)

open Vmbp_core
open Vmbp_jvm
open Minijava

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_prog ?(fuel = 20_000_000) prog =
  let image = Codegen.compile ~name:"test" prog in
  let program = Vmbp_vm.Program.copy image.Runtime.program in
  let state = Runtime.create image in
  let _steps, trap =
    Engine.run_functional ~program ~exec:(Semantics.exec state) ~fuel ()
  in
  (match trap with
  | Some msg -> Alcotest.failf "trapped: %s" msg
  | None -> ());
  Runtime.output state

let main body = { classes = []; funcs = [ { mname = "main"; params = []; body } ] }

let expect ?classes ?(funcs = []) body expected () =
  let prog =
    {
      classes = Option.value classes ~default:[];
      funcs = { mname = "main"; params = []; body } :: funcs;
    }
  in
  check_string "output" expected (run_prog prog)

(* ------------------------------------------------------------------ *)

let arithmetic_tests =
  [
    ("print literal", expect [ Print (i 42) ] "42 ");
    ("add/mul", expect [ Print ((i 2 +: i 3) *: i 4) ] "20 ");
    ("div/rem", expect [ Print (i 17 /: i 5); Print (i 17 %: i 5) ] "3 2 ");
    ("neg", expect [ Print (Neg (i 7)) ] "-7 ");
    ( "shifts and logic",
      expect
        [
          Print (Bin (Shl, i 1, i 5));
          Print (Bin (And, i 12, i 10));
          Print (Bin (Xor, i 12, i 10));
        ]
        "32 8 6 " );
    ( "comparison values",
      expect
        [ Print (i 3 <: i 4); Print (i 4 <=: i 4); Print (i 5 =: i 4) ]
        "1 1 0 " );
    ("big constant via ldc", expect [ Print (Big 123456) ] "123456 ");
  ]

let control_tests =
  [
    ( "if else",
      expect
        [ If (i 1 <: i 2, [ Print (i 10) ], [ Print (i 20) ]) ]
        "10 " );
    ( "while sum",
      expect
        [
          Decl ("s", i 0);
          Decl ("k", i 0);
          While
            ( l "k" <: i 10,
              [ Assign ("s", l "s" +: l "k"); Assign ("k", l "k" +: i 1) ] );
          Print (l "s");
        ]
        "45 " );
    ( "locals and iinc",
      expect
        [
          Decl ("x", i 5);
          Assign ("x", l "x" +: i 3);
          Print (l "x");
        ]
        "8 " );
    ( "static call",
      expect
        ~funcs:
          [
            {
              mname = "square";
              params = [ "v" ];
              body = [ Return (l "v" *: l "v") ];
            };
          ]
        [ Print (CallS ("square", [ i 9 ])) ]
        "81 " );
    ( "recursion",
      expect
        ~funcs:
          [
            {
              mname = "fib";
              params = [ "n" ];
              body =
                [
                  If (l "n" <: i 2, [ Return (l "n") ], []);
                  Return
                    (CallS ("fib", [ l "n" -: i 1 ])
                    +: CallS ("fib", [ l "n" -: i 2 ]));
                ];
            };
          ]
        [ Print (CallS ("fib", [ i 12 ])) ]
        "144 " );
  ]

let switch_tests =
  [
    ( "switch hits a case",
      expect
        [
          Switch
            ( i 2,
              [ (1, [ Print (i 10) ]); (2, [ Print (i 20) ]); (3, [ Print (i 30) ]) ],
              [ Print (i 99) ] );
        ]
        "20 " );
    ( "switch default",
      expect
        [
          Switch (i 7, [ (1, [ Print (i 10) ]); (2, [ Print (i 20) ]) ], [ Print (i 99) ]);
        ]
        "99 " );
    ( "switch hole falls to default",
      expect
        [
          Switch
            ( i 2,
              [ (1, [ Print (i 10) ]); (3, [ Print (i 30) ]) ],
              [ Print (i 99) ] );
        ]
        "99 " );
    ( "switch below range",
      expect
        [ Switch (Neg (i 5), [ (0, [ Print (i 1) ]) ], [ Print (i 99) ]) ]
        "99 " );
    ( "no fall-through",
      expect
        [
          Switch
            ( i 1,
              [ (1, [ Print (i 10) ]); (2, [ Print (i 20) ]) ],
              [ Print (i 99) ] );
          Print (i 5);
        ]
        "10 5 " );
    ( "switch in a loop",
      expect
        [
          Decl ("k", i 0);
          Decl ("acc", i 0);
          While
            ( l "k" <: i 12,
              [
                Switch
                  ( l "k" %: i 3,
                    [
                      (0, [ Assign ("acc", l "acc" +: i 1) ]);
                      (1, [ Assign ("acc", l "acc" +: i 10) ]);
                    ],
                    [ Assign ("acc", l "acc" +: i 100) ] );
                Assign ("k", l "k" +: i 1);
              ] );
          Print (l "acc");
        ]
        "444 " );
  ]

let test_switch_across_techniques () =
  let prog =
    main
      [
        Decl ("k", i 0);
        Decl ("acc", i 0);
        While
          ( l "k" <: i 50,
            [
              Switch
                ( l "k" %: i 5,
                  [
                    (0, [ Assign ("acc", l "acc" +: i 1) ]);
                    (2, [ Assign ("acc", l "acc" +: i 7) ]);
                    (4, [ Assign ("acc", (l "acc" *: i 3) %: Big 99991) ]);
                  ],
                  [ Assign ("acc", l "acc" -: i 2) ] );
              Assign ("k", l "k" +: i 1);
            ] );
        Print (l "acc");
      ]
  in
  let image = Codegen.compile ~name:"switch-xt" prog in
  let reference =
    let program = Vmbp_vm.Program.copy image.Runtime.program in
    let state = Runtime.create image in
    let _ = Engine.run_functional ~program ~exec:(Semantics.exec state) () in
    Runtime.output state
  in
  List.iter
    (fun technique ->
      let config =
        Config.make ~cpu:Vmbp_machine.Cpu_model.ideal technique
      in
      let layout = Config.build_layout config ~program:image.Runtime.program in
      let state = Runtime.create image in
      let result = Engine.run ~config ~layout ~exec:(Semantics.exec state) () in
      Alcotest.(check (option string))
        (Technique.name technique ^ " trap")
        None result.Engine.trapped;
      check_string (Technique.name technique) reference (Runtime.output state))
    [
      Technique.switch; Technique.plain; Technique.dynamic_repl;
      Technique.dynamic_super; Technique.across_bb; Technique.subroutine;
    ]

let point_classes =
  [
    {
      cname = "Point";
      super = None;
      fields = [ "x"; "y" ];
      cmethods =
        [
          {
            mname = "sum";
            params = [];
            body =
              [
                Return
                  (Field (l "this", "Point", "x")
                  +: Field (l "this", "Point", "y"));
              ];
          };
          {
            mname = "scale";
            params = [ "k" ];
            body =
              [
                SetField
                  (l "this", "Point", "x", Field (l "this", "Point", "x") *: l "k");
                SetField
                  (l "this", "Point", "y", Field (l "this", "Point", "y") *: l "k");
                Return (i 0);
              ];
          };
        ];
    };
    {
      cname = "Point3";
      super = Some "Point";
      fields = [ "z" ];
      cmethods =
        [
          {
            mname = "sum";
            params = [];
            body =
              [
                Return
                  (Field (l "this", "Point", "x")
                  +: Field (l "this", "Point", "y")
                  +: Field (l "this", "Point3", "z"));
              ];
          };
        ];
    };
  ]

let object_tests =
  [
    ( "fields",
      expect ~classes:point_classes
        [
          Decl ("p", New "Point");
          SetField (l "p", "Point", "x", i 3);
          SetField (l "p", "Point", "y", i 4);
          Print (Field (l "p", "Point", "x") +: Field (l "p", "Point", "y"));
        ]
        "7 " );
    ( "virtual dispatch and override",
      expect ~classes:point_classes
        [
          Decl ("p", New "Point");
          SetField (l "p", "Point", "x", i 1);
          SetField (l "p", "Point", "y", i 2);
          Decl ("q", New "Point3");
          SetField (l "q", "Point", "x", i 1);
          SetField (l "q", "Point", "y", i 2);
          SetField (l "q", "Point3", "z", i 10);
          Print (CallV (l "p", "sum", []));
          Print (CallV (l "q", "sum", []));
        ]
        "3 13 " );
    ( "inherited method on subclass",
      expect ~classes:point_classes
        [
          Decl ("q", New "Point3");
          SetField (l "q", "Point", "x", i 5);
          SetField (l "q", "Point", "y", i 6);
          Expr (CallV (l "q", "scale", [ i 2 ]));
          Print (Field (l "q", "Point", "x"));
          Print (Field (l "q", "Point", "y"));
        ]
        "10 12 " );
    ( "statics",
      expect
        [
          SetStatic ("counter", i 5);
          SetStatic ("counter", StaticVar "counter" +: i 10);
          Print (StaticVar "counter");
        ]
        "15 " );
    ( "arrays",
      expect
        [
          Decl ("a", NewArray (i 10));
          Decl ("k", i 0);
          While
            ( l "k" <: Length (l "a"),
              [
                SetIndex (l "a", l "k", l "k" *: l "k");
                Assign ("k", l "k" +: i 1);
              ] );
          Print (Index (l "a", i 7));
          Print (Length (l "a"));
        ]
        "49 10 " );
  ]

let trap_tests =
  let expect_trap ?(classes = []) body expected () =
    let prog =
      { classes; funcs = [ { mname = "main"; params = []; body } ] }
    in
    let image = Codegen.compile ~name:"trap" prog in
    let program = Vmbp_vm.Program.copy image.Runtime.program in
    let state = Runtime.create image in
    let _steps, trap =
      Engine.run_functional ~program ~exec:(Semantics.exec state)
        ~fuel:1_000_000 ()
    in
    match trap with
    | Some msg ->
        check_bool
          (Printf.sprintf "%S contains %S" msg expected)
          true
          (let len = String.length expected and n = String.length msg in
           let rec find i =
             i + len <= n && (String.sub msg i len = expected || find (i + 1))
           in
           find 0)
    | None -> Alcotest.failf "expected trap %s" expected
  in
  [
    ( "null pointer",
      expect_trap ~classes:point_classes
        [ Decl ("p", i 0); Print (Field (l "p", "Point", "x")) ]
        "null pointer" );
    ( "division by zero",
      expect_trap [ Print (i 1 /: i 0) ] "division by zero" );
    ( "array bounds",
      expect_trap
        [ Decl ("a", NewArray (i 3)); Print (Index (l "a", i 5)) ]
        "out of bounds" );
    ( "negative array",
      expect_trap [ Decl ("a", NewArray (Neg (i 1))); Print (l "a") ]
        "negative array" );
  ]

(* ------------------------------------------------------------------ *)
(* Hand-assembled bytecode: covers the stack-manipulation and
   single-operand branch opcodes the MiniJava compiler never emits. *)

let o = Opcode.ops

let run_raw ?(nlocals = 4) slots =
  let code =
    Array.of_list
      (List.map
         (fun (opcode, operands) -> { Vmbp_vm.Program.opcode; operands })
         slots)
  in
  let image =
    Runtime.link ~name:"raw" ~classes:[]
      ~methods:
        [
          {
            Classfile.m_name = "main";
            m_is_virtual = false;
            m_class = None;
            m_nargs = 0;
            m_nlocals = nlocals;
            m_entry = 0;
          };
        ]
      ~cp:[||] ~code ~main:"main"
  in
  let program = Vmbp_vm.Program.copy image.Runtime.program in
  let state = Runtime.create image in
  let _steps, trap =
    Engine.run_functional ~program ~exec:(Semantics.exec state) ~fuel:100_000 ()
  in
  (match trap with
  | Some msg -> Alcotest.failf "raw program trapped: %s" msg
  | None -> ());
  Runtime.output state

let print_ = (o.Opcode.print_int, [||])
let iconst v = (o.Opcode.iconst, [| v |])
let ret = (o.Opcode.return_, [||])

let raw_battery =
  [
    ("dup", [ iconst 7; (o.Opcode.dup, [||]); print_; print_; ret ], "7 7 ");
    ( "dup_x1",
      (* a b -> b a b; print order is top-first *)
      [ iconst 1; iconst 2; (o.Opcode.dup_x1, [||]); print_; print_; print_; ret ],
      "2 1 2 " );
    ( "swap",
      [ iconst 1; iconst 2; (o.Opcode.swap, [||]); print_; print_; ret ],
      "1 2 " );
    ( "pop",
      [ iconst 1; iconst 2; (o.Opcode.pop, [||]); print_; ret ],
      "1 " );
    ( "ifne taken",
      [ iconst 5; (o.Opcode.ifne, [| 3 |]); iconst 111; iconst 42; print_; ret ],
      "42 " );
    ( "ifne not taken",
      [ iconst 0; (o.Opcode.ifne, [| 4 |]); iconst 42; print_; ret; iconst 9; ret ],
      "42 " );
    ( "iflt",
      [ iconst (-1); (o.Opcode.iflt, [| 3 |]); iconst 111; iconst 42; print_; ret ],
      "42 " );
    ( "ifge",
      [ iconst 0; (o.Opcode.ifge, [| 3 |]); iconst 111; iconst 42; print_; ret ],
      "42 " );
    ( "goto",
      [ (o.Opcode.goto, [| 2 |]); iconst 111; iconst 42; print_; ret ],
      "42 " );
    ( "iload/istore roundtrip",
      [ iconst 33; (o.Opcode.istore, [| 1 |]); (o.Opcode.iload, [| 1 |]); print_; ret ],
      "33 " );
    ( "iinc",
      [ iconst 5; (o.Opcode.istore, [| 0 |]); (o.Opcode.iinc, [| 0; 37 |]);
        (o.Opcode.iload, [| 0 |]); print_; ret ],
      "42 " );
    ( "newarray/iastore/iaload/arraylength",
      [ iconst 3; (o.Opcode.newarray, [||]); (o.Opcode.istore, [| 0 |]);
        (o.Opcode.iload, [| 0 |]); iconst 2; iconst 42; (o.Opcode.iastore, [||]);
        (o.Opcode.iload, [| 0 |]); iconst 2; (o.Opcode.iaload, [||]); print_;
        (o.Opcode.iload, [| 0 |]); (o.Opcode.arraylength, [||]); print_; ret ],
      "42 3 " );
  ]

let raw_tests =
  List.map
    (fun (name, slots, expected) ->
      (name, fun () -> check_string name expected (run_raw slots)))
    raw_battery

(* ------------------------------------------------------------------ *)
(* Quickening behaviour *)

let quicken_prog =
  {
    classes = point_classes;
    funcs =
      [
        {
          mname = "main";
          params = [];
          body =
            [
              Decl ("acc", i 0);
              Decl ("k", i 0);
              Decl ("p", New "Point3");
              While
                ( l "k" <: i 100,
                  [
                    SetField (l "p", "Point", "x", l "k");
                    SetField (l "p", "Point", "y", i 2);
                    Assign ("acc", l "acc" +: CallV (l "p", "sum", []));
                    Assign ("k", l "k" +: i 1);
                  ] );
              Print (l "acc");
            ];
        };
      ];
  }

let test_quickening_counts () =
  let image = Codegen.compile ~name:"quicken" quicken_prog in
  let config = Config.make ~cpu:Vmbp_machine.Cpu_model.ideal Technique.plain in
  let layout = Config.build_layout config ~program:image.Runtime.program in
  let state = Runtime.create image in
  let result =
    Engine.run ~config ~layout ~exec:(Semantics.exec state) ~fuel:10_000_000 ()
  in
  Alcotest.(check (option string)) "no trap" None result.Engine.trapped;
  check_string "output" "5150 " (Runtime.output state);
  let m = result.Engine.metrics in
  check_bool
    (Printf.sprintf "some quickenings (%d)" m.Vmbp_machine.Metrics.quickenings)
    true
    (m.Vmbp_machine.Metrics.quickenings > 3);
  (* Each quickable site quickens at most once: far fewer quickenings than
     loop iterations. *)
  check_bool "quickening is one-shot" true
    (m.Vmbp_machine.Metrics.quickenings < 30)

let test_cross_technique () =
  let image = Codegen.compile ~name:"xt" quicken_prog in
  List.iter
    (fun technique ->
      let config = Config.make ~cpu:Vmbp_machine.Cpu_model.ideal technique in
      let profile = Vmbp_vm.Profile.empty ~max_seq_len:4 in
      Vmbp_vm.Profile.add_program profile image.Runtime.program;
      let layout =
        Config.build_layout ~profile config ~program:image.Runtime.program
      in
      let state = Runtime.create image in
      let result =
        Engine.run ~config ~layout ~exec:(Semantics.exec state)
          ~fuel:10_000_000 ()
      in
      Alcotest.(check (option string))
        (Technique.name technique ^ " trap")
        None result.Engine.trapped;
      check_string (Technique.name technique) "5150 " (Runtime.output state))
    [
      Technique.switch;
      Technique.plain;
      Technique.static_repl ~n:40 ();
      Technique.static_super ~n:40 ();
      Technique.dynamic_repl;
      Technique.dynamic_super;
      Technique.dynamic_both;
      Technique.across_bb;
      Technique.with_static_super ~n:20 ();
      Technique.with_static_across_bb ~n:20 ();
    ]

let test_heap_accounting () =
  let prog =
    main
      [
        Decl ("k", i 0);
        While
          (l "k" <: i 5, [ Expr (NewArray (i 4)); Assign ("k", l "k" +: i 1) ]);
        Print (l "k");
      ]
  in
  let image = Codegen.compile ~name:"heap" prog in
  let program = Vmbp_vm.Program.copy image.Runtime.program in
  let state = Runtime.create image in
  let _ = Engine.run_functional ~program ~exec:(Semantics.exec state) () in
  check_int "five arrays" 5 (Runtime.heap_objects state)

(* ------------------------------------------------------------------ *)
(* Property: random MiniJava expressions compile and evaluate to the same
   value as direct OCaml evaluation. *)

type jexp =
  | JLit of int
  | JBig of int
  | JBin of Minijava.binop * jexp * jexp
  | JNeg of jexp

let rec eval_jexp = function
  | JLit v | JBig v -> v
  | JNeg a -> -eval_jexp a
  | JBin (op, a, b) -> (
      let a = eval_jexp a and b = eval_jexp b in
      match op with
      | Add -> a + b
      | Sub -> a - b
      | Mul -> (a * b) land 0xFFFFF
      | Div -> if b = 0 then 0 else a / b
      | Rem -> if b = 0 then 0 else a mod b
      | Shl -> a lsl (b land 7)
      | Shr -> a asr (b land 7)
      | And -> a land b
      | Or -> a lor b
      | Xor -> a lxor b
      | Eq -> if a = b then 1 else 0
      | Ne -> if a <> b then 1 else 0
      | Lt -> if a < b then 1 else 0
      | Le -> if a <= b then 1 else 0
      | Gt -> if a > b then 1 else 0
      | Ge -> if a >= b then 1 else 0)

(* Render to MiniJava, guarding division and masking shift/mul exactly as
   the reference evaluation does. *)
let rec mj_of_jexp e : Minijava.expr =
  match e with
  | JLit v -> Int v
  | JBig v -> Big v
  | JNeg a -> Neg (mj_of_jexp a)
  | JBin (op, a, b) -> (
      let ma = mj_of_jexp a and mb = mj_of_jexp b in
      match op with
      | Mul -> Bin (And, Bin (Mul, ma, mb), Big 0xFFFFF)
      | Div ->
          let bv = eval_jexp b in
          if bv = 0 then Int 0 else Bin (Div, ma, Int bv)
      | Rem ->
          let bv = eval_jexp b in
          if bv = 0 then Int 0 else Bin (Rem, ma, Int bv)
      | Shl -> Bin (Shl, ma, Bin (And, mb, Int 7))
      | Shr -> Bin (Shr, ma, Bin (And, mb, Int 7))
      | op -> Bin (op, ma, mb))

let gen_jexp =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then
             oneof
               [
                 map (fun v -> JLit v) (int_range (-40) 40);
                 map (fun v -> JBig v) (int_range 1000 99999);
               ]
           else
             let sub = self (n / 2) in
             let binops =
               [ Minijava.Add; Sub; Mul; Div; Rem; Shl; Shr; And; Or; Xor;
                 Eq; Ne; Lt; Le; Gt; Ge ]
             in
             oneof
               [
                 map (fun v -> JLit v) (int_range (-40) 40);
                 map3
                   (fun op a b -> JBin (op, a, b))
                   (oneofl binops) sub sub;
                 map (fun a -> JNeg a) sub;
               ]))

let prop_minijava_exprs_agree =
  QCheck.Test.make ~name:"compiled MiniJava expressions equal OCaml evaluation"
    ~count:300
    (QCheck.make gen_jexp)
    (fun e ->
      (* Division by zero is rewritten away in [mj_of_jexp]; the rewritten
         expression and the reference agree by construction. *)
      let expected = eval_jexp e in
      let out = run_prog (main [ Print (mj_of_jexp e) ]) in
      out = string_of_int expected ^ " ")

let tc (name, f) = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "jvm"
    [
      ("arithmetic", List.map tc arithmetic_tests);
      ("raw-bytecode", List.map tc raw_tests);
      ( "tableswitch",
        List.map tc switch_tests
        @ [
            Alcotest.test_case "switch across techniques" `Quick
              test_switch_across_techniques;
          ] );
      ("control", List.map tc control_tests);
      ("objects", List.map tc object_tests);
      ("traps", List.map tc trap_tests);
      ( "quickening",
        [
          Alcotest.test_case "quickening counts" `Quick test_quickening_counts;
          Alcotest.test_case "all techniques agree" `Quick test_cross_technique;
          Alcotest.test_case "heap accounting" `Quick test_heap_accounting;
          QCheck_alcotest.to_alcotest prop_minijava_exprs_agree;
        ] );
    ]

(* Development smoke runner for JVM workloads. *)
let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "compress" in
  let scale = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1 in
  let wl = Option.get (Vmbp_jvm.Jvm_workloads.find name) in
  let image = wl.Vmbp_jvm.Jvm_workloads.build ~scale in
  let program = Vmbp_vm.Program.copy image.Vmbp_jvm.Runtime.program in
  Printf.printf "%s: %d slots\n%!" name (Vmbp_vm.Program.length program);
  let state = Vmbp_jvm.Runtime.create image in
  let t0 = Unix.gettimeofday () in
  let steps, trap =
    Vmbp_core.Engine.run_functional ~program
      ~exec:(Vmbp_jvm.Semantics.exec state) ~fuel:500_000_000 ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "steps=%d (%.2f Mvm/s) trap=%s\noutput: %s\n" steps
    (float_of_int steps /. 1e6 /. dt)
    (match trap with Some m -> m | None -> "-")
    (Vmbp_jvm.Runtime.output state)

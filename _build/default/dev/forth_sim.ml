(* Development: run one Forth workload under a full simulation config. *)
let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "gray" in
  let scale = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1 in
  let tname = if Array.length Sys.argv > 3 then Sys.argv.(3) else "plain" in
  let technique = Option.get (Vmbp_core.Technique.of_name tname) in
  let wl = Option.get (Vmbp_forth.Forth_workloads.find name) in
  let source = wl.Vmbp_forth.Forth_workloads.source ~scale in
  let program = Vmbp_forth.Compiler.compile ~name source in
  let profile = Vmbp_vm.Profile.empty ~max_seq_len:4 in
  Vmbp_vm.Profile.add_program profile program;
  let config = Vmbp_core.Config.make ~cpu:Vmbp_machine.Cpu_model.pentium4_northwood technique in
  let layout = Vmbp_core.Config.build_layout ~profile config ~program in
  let state = Vmbp_forth.State.create () in
  let t0 = Unix.gettimeofday () in
  let r = Vmbp_core.Engine.run ~config ~layout ~exec:(Vmbp_forth.Instruction_set.exec state) ~fuel:500_000_000 () in
  let dt = Unix.gettimeofday () -. t0 in
  let m = r.Vmbp_core.Engine.metrics in
  Printf.printf "%s/%s: steps=%d (%.2f Mvm/s) cycles=%.0f trap=%s\n  %s\n  output=%s\n"
    name tname r.Vmbp_core.Engine.steps (float_of_int r.Vmbp_core.Engine.steps /. 1e6 /. dt)
    r.Vmbp_core.Engine.cycles
    (match r.Vmbp_core.Engine.trapped with Some m -> m | None -> "-")
    (Format.asprintf "%a" Vmbp_machine.Metrics.pp m)
    (Vmbp_forth.State.output state)

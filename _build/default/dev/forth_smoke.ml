(* Development smoke runner: compile and execute one Forth workload
   functionally, printing its output, step count and timing. *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "gray" in
  let scale =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1
  in
  match Vmbp_forth.Forth_workloads.find name with
  | None ->
      prerr_endline ("unknown workload: " ^ name);
      exit 1
  | Some wl ->
      let source = wl.Vmbp_forth.Forth_workloads.source ~scale in
      let program = Vmbp_forth.Compiler.compile ~name source in
      Printf.printf "%s: %d slots\n%!" name (Vmbp_vm.Program.length program);
      let state = Vmbp_forth.State.create () in
      let t0 = Unix.gettimeofday () in
      let steps, trap =
        Vmbp_core.Engine.run_functional ~program
          ~exec:(Vmbp_forth.Instruction_set.exec state)
          ~fuel:200_000_000 ()
      in
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "steps=%d (%.2f Mvm/s) trap=%s\noutput: %s\n" steps
        (float_of_int steps /. 1e6 /. dt)
        (match trap with Some m -> m | None -> "-")
        (Vmbp_forth.State.output state)

(* One-off wide randomized equivalence sweep across all techniques. *)
open Vmbp_core
module T = Vmbp_toyvm.Toy_vm

let techniques =
  [
    Technique.switch; Technique.plain;
    Technique.static_repl ~n:64 ();
    Technique.static_super ~n:64 ();
    Technique.static_both ~supers:16 ~replicas:48 ();
    Technique.Static (Technique.static_params ~superinstrs:32 ~parse:Technique.Optimal ());
    Technique.Static (Technique.static_params ~replicas:32 ~strategy:(Technique.Random 7) ());
    Technique.dynamic_repl; Technique.dynamic_super; Technique.dynamic_both;
    Technique.across_bb;
    Technique.with_static_super ~n:24 ();
    Technique.with_static_across_bb ~n:24 ();
    Technique.subroutine;
  ]

let () =
  let failures = ref 0 in
  for seed = 1 to 200 do
    let program = T.random_program ~seed ~size:(20 + (seed mod 60)) in
    let reference =
      let p = Vmbp_vm.Program.copy program in
      let st = T.create_state ~counters:(Array.make 16 (5 + (seed mod 40))) () in
      let _ = Engine.run_functional ~program:p ~exec:(T.exec st) ~fuel:20_000_000 () in
      T.checksum st
    in
    let profile = Vmbp_vm.Profile.empty ~max_seq_len:4 in
    Vmbp_vm.Profile.add_program profile program;
    List.iter
      (fun technique ->
        List.iter
          (fun cpu ->
            let config = Config.make ~cpu technique in
            let layout = Config.build_layout ~profile config ~program in
            let st = T.create_state ~counters:(Array.make 16 (5 + (seed mod 40))) () in
            let r = Engine.run ~config ~layout ~exec:(T.exec st) ~fuel:20_000_000 () in
            if r.Engine.trapped <> None || T.checksum st <> reference then begin
              incr failures;
              Printf.printf "MISMATCH seed=%d technique=%s cpu=%s trap=%s\n"
                seed (Technique.name technique) cpu.Vmbp_machine.Cpu_model.name
                (Option.value r.Engine.trapped ~default:"-")
            end)
          [ Vmbp_machine.Cpu_model.ideal; Vmbp_machine.Cpu_model.celeron_800 ])
      techniques
  done;
  Printf.printf "sweep done: %d failures over 200 seeds x %d techniques x 2 cpus\n"
    !failures (List.length techniques)

dev/forth_smoke.mli:

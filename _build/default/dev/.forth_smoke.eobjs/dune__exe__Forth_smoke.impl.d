dev/forth_smoke.ml: Array Printf Sys Unix Vmbp_core Vmbp_forth Vmbp_vm

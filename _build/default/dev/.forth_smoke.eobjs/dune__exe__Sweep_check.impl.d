dev/sweep_check.ml: Array Config Engine List Option Printf Technique Vmbp_core Vmbp_machine Vmbp_toyvm Vmbp_vm

dev/forth_sim.ml: Array Format Option Printf Sys Unix Vmbp_core Vmbp_forth Vmbp_machine Vmbp_vm

dev/forth_sim.mli:

dev/sweep_check.mli:

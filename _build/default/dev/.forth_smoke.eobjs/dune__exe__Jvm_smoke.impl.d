dev/jvm_smoke.ml: Array Option Printf Sys Unix Vmbp_core Vmbp_jvm Vmbp_vm

dev/jvm_smoke.mli:

(* The paper's worked examples (Tables I, II and IV): trace every dispatch
   of the loop [A; B; A; goto] through an idealised BTB and watch how
   switch dispatch, threaded code, replication and superinstructions
   change the predictions.

     dune exec examples/dispatch_tables.exe *)

open Vmbp_core

let trace ~title ~technique ?profile () =
  let program = Vmbp_toyvm.Toy_vm.table1_loop () in
  let state = Vmbp_toyvm.Toy_vm.create_state ~counters:(Array.make 16 10) () in
  let rows =
    Vmbp_report.Dispatch_trace.trace ~technique ?profile ~program
      ~exec:(Vmbp_toyvm.Toy_vm.exec state) ~skip:8 ~take:8 ()
  in
  Printf.printf "--- %s ---\n%s\n" title (Vmbp_report.Dispatch_trace.render rows)

let () =
  print_endline "VM program:  label: A ; B ; A ; loop label\n";
  trace ~title:"switch dispatch (Table I left)" ~technique:Technique.switch ();
  trace ~title:"threaded code (Table I right)" ~technique:Technique.plain ();
  let program = Vmbp_toyvm.Toy_vm.table1_loop () in
  let profile = Vmbp_vm.Profile.empty ~max_seq_len:4 in
  Vmbp_vm.Profile.add_program profile program;
  trace
    ~title:"static replication (Table II)"
    ~technique:(Technique.static_repl ~n:8 ())
    ~profile ();
  trace
    ~title:"static superinstruction (Table IV)"
    ~technique:(Technique.static_super ~n:4 ())
    ~profile ();
  print_endline
    "With replication every copy has one successor, and with the\n\
     superinstruction the loop body collapses to two dispatches -- in both\n\
     cases the BTB predicts every steady-state dispatch correctly."

examples/jvm_quickening.ml: Codegen Config Engine Format Minijava Printf Runtime Semantics Technique Vmbp_core Vmbp_jvm Vmbp_machine Vmbp_vm

examples/superinstruction_lab.ml: Array Block_parse Config Engine List Printf String Super_set Superinstr_select Technique Vmbp_core Vmbp_forth Vmbp_machine Vmbp_vm

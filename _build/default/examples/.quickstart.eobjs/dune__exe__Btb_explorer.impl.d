examples/btb_explorer.ml: Btb Cpu_model Engine List Metrics Option Predictor Printf Technique Two_level Vmbp_core Vmbp_machine Vmbp_report Vmbp_workloads

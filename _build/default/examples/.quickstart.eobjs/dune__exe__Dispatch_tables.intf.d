examples/dispatch_tables.mli:

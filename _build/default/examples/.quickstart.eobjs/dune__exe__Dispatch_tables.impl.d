examples/dispatch_tables.ml: Array Printf Technique Vmbp_core Vmbp_report Vmbp_toyvm Vmbp_vm

examples/quickstart.ml: Config Cpu_model Engine Metrics Printf Technique Vmbp_core Vmbp_forth Vmbp_machine Vmbp_vm

examples/jvm_quickening.mli:

examples/superinstruction_lab.mli:

examples/quickstart.mli:

(* Quickstart: compile a Forth program, run it under two dispatch
   techniques on a simulated Pentium 4, and compare the branch-prediction
   behaviour.

     dune exec examples/quickstart.exe *)

open Vmbp_core
open Vmbp_machine

let source =
  {|
: fib ( n -- fib ) dup 2 < if exit then dup 1- recurse swap 2 - recurse + ;
: main 25 0 do i fib drop loop ." done" cr ;
main
|}

let run ~technique ~program =
  let config = Config.make ~cpu:Cpu_model.pentium4_northwood technique in
  let layout = Config.build_layout config ~program in
  let state = Vmbp_forth.State.create () in
  let result =
    Engine.run ~config ~layout ~exec:(Vmbp_forth.Instruction_set.exec state) ()
  in
  (result, Vmbp_forth.State.output state)

let () =
  let program = Vmbp_forth.Compiler.compile ~name:"quickstart" source in
  Printf.printf "compiled %d VM code slots\n\n" (Vmbp_vm.Program.length program);
  let show name (result : Engine.result) output =
    let m = result.Engine.metrics in
    Printf.printf "%-14s output=%S\n" name output;
    Printf.printf "  %-20s %d\n" "VM instructions" m.Metrics.vm_instrs;
    Printf.printf "  %-20s %d\n" "dispatches" m.Metrics.dispatches;
    Printf.printf "  %-20s %d (%.1f%% of indirect branches)\n" "mispredicted"
      m.Metrics.mispredicts
      (100. *. Metrics.misprediction_rate m);
    Printf.printf "  %-20s %.0f\n\n" "modelled cycles" result.Engine.cycles;
    result.Engine.cycles
  in
  let plain, out1 = run ~technique:Technique.plain ~program in
  let super, out2 = run ~technique:Technique.across_bb ~program in
  let c1 = show "plain threaded" plain out1 in
  let c2 = show "across-bb super" super out2 in
  assert (out1 = out2);
  Printf.printf "speedup from dynamic superinstructions with replication: %.2fx\n"
    (c1 /. c2)

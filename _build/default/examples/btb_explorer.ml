(* Explore how BTB geometry and predictor choice change interpreter
   behaviour on a real workload (the bench-gc Forth program).

     dune exec examples/btb_explorer.exe *)

open Vmbp_core
open Vmbp_machine

let workload = Option.get (Vmbp_workloads.find ~vm:Vmbp_workloads.Forth "bench-gc")

let rate ~technique ~predictor =
  let r =
    Vmbp_report.Runner.run ~cpu:Cpu_model.celeron_800 ~predictor ~technique
      workload
  in
  100. *. Metrics.misprediction_rate r.Vmbp_report.Runner.result.Engine.metrics

let () =
  print_endline "Dispatch misprediction rate of bench-gc (Forth, Celeron-800)\n";
  print_endline "1. BTB capacity sweep (plain threaded code vs replication):";
  Printf.printf "   %-10s %10s %14s\n" "entries" "plain" "dynamic repl";
  List.iter
    (fun entries ->
      let predictor = Predictor.Btb (Btb.classic ~entries ~associativity:4) in
      Printf.printf "   %-10d %9.1f%% %13.1f%%\n" entries
        (rate ~technique:Technique.plain ~predictor)
        (rate ~technique:Technique.dynamic_repl ~predictor))
    [ 64; 256; 1024; 4096 ];
  print_endline "\n2. Predictor shoot-out (plain threaded code):";
  List.iter
    (fun predictor ->
      Printf.printf "   %-18s %9.1f%%\n"
        (Predictor.kind_name predictor)
        (rate ~technique:Technique.plain ~predictor))
    [
      Predictor.Btb (Btb.classic ~entries:512 ~associativity:4);
      Predictor.Btb (Btb.with_counters ~entries:512 ~associativity:4);
      Predictor.Two_level Two_level.default;
      Predictor.Perfect;
    ];
  print_endline
    "\nThe two-level predictor (Pentium M, Section 8 of the paper) fixes\n\
     most interpreter mispredictions in hardware; on BTB machines the\n\
     software techniques are needed instead."

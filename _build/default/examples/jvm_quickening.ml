(* Quickening in the mini-JVM (Section 5.4 of the paper): watch getfield
   resolve itself into getfield_quick on first execution, and see how the
   dynamic techniques patch the quick code into the gap they reserved.

     dune exec examples/jvm_quickening.exe *)

open Vmbp_core
open Vmbp_jvm
open Minijava

let prog =
  {
    classes =
      [
        {
          cname = "Counter";
          super = None;
          fields = [ "n" ];
          cmethods =
            [
              {
                mname = "bump";
                params = [];
                body =
                  [
                    SetField
                      (l "this", "Counter", "n",
                       Field (l "this", "Counter", "n") +: i 1);
                    Return (Field (l "this", "Counter", "n"));
                  ];
              };
            ];
        };
      ];
    funcs =
      [
        {
          mname = "main";
          params = [];
          body =
            [
              Decl ("c", New "Counter");
              Decl ("k", i 0);
              While
                (l "k" <: i 50,
                 [ Expr (CallV (l "c", "bump", [])); Assign ("k", l "k" +: i 1) ]);
              Print (Field (l "c", "Counter", "n"));
            ];
        };
      ];
  }

let disassemble program lo hi =
  for slot = lo to hi do
    Format.printf "%a@." (Vmbp_vm.Program.pp_slot program) slot
  done

let () =
  let image = Codegen.compile ~name:"quickening-demo" prog in
  let config =
    Config.make ~cpu:Vmbp_machine.Cpu_model.pentium4_northwood
      Technique.dynamic_super
  in
  let layout = Config.build_layout config ~program:image.Runtime.program in
  let program = layout.Vmbp_core.Code_layout.program in
  let n = min 14 (Vmbp_vm.Program.length program - 1) in
  print_endline "bytecode of Counter.bump and main before execution:";
  disassemble program 0 n;
  let state = Runtime.create image in
  let result = Engine.run ~config ~layout ~exec:(Semantics.exec state) () in
  print_endline "\nafter one run (quickables rewrote themselves):";
  disassemble program 0 n;
  let m = result.Engine.metrics in
  Printf.printf
    "\noutput: %s\nquickenings: %d (once per reachable quickable site)\n"
    (Runtime.output state)
    m.Vmbp_machine.Metrics.quickenings;
  (* A second run through the same code quickens nothing. *)
  let state2 = Runtime.create image in
  let result2 = Engine.run ~config ~layout ~exec:(Semantics.exec state2) () in
  Printf.printf "second run quickenings: %d\n"
    result2.Engine.metrics.Vmbp_machine.Metrics.quickenings

(* Static superinstruction selection and parsing, step by step: profile a
   program, pick a superinstruction set, and compare greedy vs optimal
   parsing of its basic blocks (Section 5.1 of the paper).

     dune exec examples/superinstruction_lab.exe *)

open Vmbp_core
module Program = Vmbp_vm.Program
module Profile = Vmbp_vm.Profile

let source =
  {|
: sum-sq ( n -- s ) 0 swap 1+ 1 do i i * + loop ;
: main 0 100 0 do i sum-sq + loop . ;
main
|}

let () =
  let program = Vmbp_forth.Compiler.compile ~name:"lab" source in
  let iset = program.Program.iset in
  (* 1. Profile: which opcode sequences appear? *)
  let profile = Profile.empty ~max_seq_len:4 in
  Profile.add_program profile program;
  print_endline "most frequent instruction sequences:";
  List.iter
    (fun seq ->
      let names =
        Array.to_list seq
        |> List.map (fun opcode ->
               (Vmbp_vm.Instr_set.get iset opcode).Vmbp_vm.Instr.name)
      in
      Printf.printf "  %-28s x%d\n"
        (String.concat " " names)
        (Profile.sequence_count profile seq))
    (Profile.top_sequences profile ~n:8 ());
  (* 2. Select a superinstruction set and parse the program's blocks. *)
  let params = Technique.static_params ~superinstrs:8 () in
  let supers = Superinstr_select.select ~profile ~params in
  Printf.printf "\nselected %d superinstructions\n" (Super_set.size supers);
  let bb = Vmbp_vm.Basic_block.analyze program in
  let opcodes i = program.Program.code.(i).Program.opcode in
  let eligible i =
    match (Program.instr_at program i).Vmbp_vm.Instr.branch with
    | Vmbp_vm.Instr.Straight -> true
    | _ -> false
  in
  let count parse =
    Array.fold_left
      (fun acc (blk : Vmbp_vm.Basic_block.block) ->
        acc
        + Block_parse.group_count
            (parse supers ~opcodes ~eligible ~start:blk.Vmbp_vm.Basic_block.start
               ~stop:blk.Vmbp_vm.Basic_block.stop))
      0 bb.Vmbp_vm.Basic_block.blocks
  in
  Printf.printf "program slots:   %d\n" (Program.length program);
  Printf.printf "greedy parse:    %d dispatch groups\n" (count Block_parse.greedy);
  Printf.printf "optimal parse:   %d dispatch groups\n" (count Block_parse.optimal);
  (* 3. And the end-to-end effect on the simulated machine. *)
  let run technique =
    let config =
      Config.make ~cpu:Vmbp_machine.Cpu_model.pentium4_northwood technique
    in
    let layout = Config.build_layout ~profile config ~program in
    let state = Vmbp_forth.State.create () in
    let r =
      Engine.run ~config ~layout ~exec:(Vmbp_forth.Instruction_set.exec state) ()
    in
    r.Engine.cycles
  in
  let plain = run Technique.plain in
  let super = run (Technique.static_super ~n:8 ()) in
  Printf.printf "\nplain threaded:  %.0f modelled cycles\n" plain;
  Printf.printf "8 static supers: %.0f modelled cycles (%.2fx)\n" super
    (plain /. super)
